"""The closed autotune loop: profile → advise → live-migrate → re-verify.

Covers the acceptance contract: the loop reduces the remote sample
fraction and lpi_NUMA against the untouched baseline, the report is
deterministic for a given seed (serially and across worker counts), a
failed migration leaves the run state untouched and the run completes,
and the heatmap CSV artifacts obey the golden schema.
"""

import json

import pytest

from repro.analysis.io import export_heatmap_csvs
from repro.machine import presets
from repro.machine.pagetable import PlacementPolicy
from repro.optim.autotune import AutotuneConfig, autotune, pick_boundary
from repro.optim.policies import MigrationStep, PolicySchedule
from repro.parallel import sharding_supported
from repro.profiler import NumaProfiler
from repro.runtime import ExecutionEngine
from repro.runtime.thread import BindingPolicy
from repro.sampling import create_mechanism
from repro.__main__ import _builders

SCALE = 0.05
THREADS = 8
PERIOD = 512


def _config(workload="sweep", **overrides):
    defaults = dict(
        machine_factory=presets.PRESETS["generic"],
        program_factory=_builders(SCALE)[workload],
        n_threads=THREADS,
        binding=BindingPolicy.COMPACT,
        mechanism_name="IBS",
        period=PERIOD,
        seed=3,
    )
    defaults.update(overrides)
    return AutotuneConfig(**defaults)


@pytest.fixture(scope="module")
def sweep_report(tmp_path_factory):
    out = tmp_path_factory.mktemp("autotune_sweep")
    return autotune(_config(out_dir=out)), out


class TestClosedLoop:
    def test_improves_remote_and_lpi(self, sweep_report):
        report, _ = sweep_report
        assert report.improved
        assert report.remote_after < report.remote_before
        assert report.lpi_after < report.lpi_before
        assert report.planned
        assert all(a["ok"] for a in report.applied)

    def test_migration_fires_inside_the_run(self, sweep_report):
        report, _ = sweep_report
        region_idx, iteration = report.boundary
        assert iteration >= 1  # a real profiling window ran first
        assert all(
            (a["region_idx"], a["iteration"]) == (region_idx, iteration)
            for a in report.applied
        )

    def test_report_round_trips_as_json(self, sweep_report):
        report, out = sweep_report
        on_disk = json.loads((out / "autotune_report.json").read_text())
        assert on_disk == json.loads(json.dumps(report.to_dict()))
        assert on_disk["program"] == "partitioned_sweep"

    def test_deterministic_given_seed(self):
        a = autotune(_config()).to_dict()
        b = autotune(_config()).to_dict()
        assert a == b


@pytest.mark.skipif(
    not sharding_supported(), reason="platform cannot fork worker pools"
)
@pytest.mark.parametrize("n_workers", [2, 4])
def test_report_identical_across_worker_counts(n_workers):
    serial = autotune(_config()).to_dict()
    sharded = autotune(_config(n_workers=n_workers)).to_dict()
    serial["n_workers"] = sharded["n_workers"] = None
    assert serial == sharded


class TestFailedMigration:
    """An exhausted domain aborts the migration but never the run."""

    def _run_lulesh(self, schedule):
        # LULESH at 8000 nodes: six 16-page nodal arrays pre-bound to
        # domain 1 (96 pages, leaving 16 of 112 frames free there) and
        # the 63-page ``nodelist`` first-touched onto domain 0.
        from repro.machine.pagetable import PlacementPolicy as PP
        from repro.optim.policies import NumaTuning, PlacementSpec
        from repro.workloads import Lulesh
        from repro.workloads.lulesh import NODAL_ARRAYS

        tuning = NumaTuning(placement={
            name: PlacementSpec(PP.BIND, (1,)) for name in NODAL_ARRAYS
        })
        profiler = NumaProfiler(create_mechanism("IBS", PERIOD))
        engine = ExecutionEngine(
            presets.generic(n_domains=4, cores_per_domain=2,
                            frames_per_domain=112),
            Lulesh(tuning, n_nodes=8_000, steps=4),
            THREADS,
            monitor=profiler,
            binding=BindingPolicy.COMPACT,
            schedule=schedule,
        )
        return engine.run(), engine

    def _failing_schedule(self):
        # nodelist (63 pages) into domain 1 (16 free, nothing freed
        # there by the move) cannot fit — must abort atomically.
        schedule = PolicySchedule()
        schedule.add(
            1, 1, MigrationStep("nodelist", PlacementPolicy.BIND, (1,))
        )
        return schedule

    def test_run_completes_and_state_is_untouched(self):
        result, engine = self._run_lulesh(self._failing_schedule())
        assert len(engine.applied_actions) == 1
        action = engine.applied_actions[0]
        assert not action.ok
        assert "short" in action.error

        # The failed-migration run is bit-identical to an unscheduled one.
        ref_result, ref_engine = self._run_lulesh(None)
        assert ref_engine.applied_actions == []
        assert result.wall_cycles == ref_result.wall_cycles
        assert result.remote_dram_accesses == ref_result.remote_dram_accesses
        assert result.total_accesses == ref_result.total_accesses

    def test_unknown_variable_is_logged_not_fatal(self):
        schedule = PolicySchedule()
        schedule.add(
            1, 1, MigrationStep("ghost", PlacementPolicy.INTERLEAVE)
        )
        result, engine = self._run_lulesh(schedule)
        assert result.wall_cycles > 0
        assert len(engine.applied_actions) == 1
        assert not engine.applied_actions[0].ok
        assert "ghost" in engine.applied_actions[0].error


class TestHeatmapGolden:
    """Golden schema for the per-page × thread heatmap CSVs."""

    def test_csv_schema(self, sweep_report):
        _, out = sweep_report
        for sub in ("baseline", "autotuned"):
            for name in ("heatmap_access.csv", "heatmap_latency.csv"):
                path = out / sub / name
                assert path.exists(), path
                lines = path.read_text().splitlines()
                header = lines[0].split(",")
                assert header[0] == "page"
                assert header[1:] == [f"t{t}" for t in range(THREADS)]
                assert len(lines) > 1
                width = len(header)
                for line in lines[1:]:
                    cells = line.split(",")
                    assert len(cells) == width
                    int(cells[0])  # page numbers are integers
                    for cell in cells[1:]:
                        assert float(cell) >= 0.0

    def test_access_counts_match_sample_counters(self, sweep_report):
        # Total access-heat equals the profiler's sample count: the
        # heatmap is a re-binning of the same samples, not a new source.
        _, out = sweep_report
        lines = (out / "baseline" / "heatmap_access.csv").read_text().splitlines()
        total = sum(
            int(c) for line in lines[1:] for c in line.split(",")[1:]
        )
        assert total > 0

    def test_export_requires_heat(self):
        profiler = NumaProfiler(create_mechanism("IBS", PERIOD))  # no heatmap
        ExecutionEngine(
            presets.generic(n_domains=4, cores_per_domain=2),
            _builders(SCALE)["sweep"](),
            THREADS,
            monitor=profiler,
        ).run()
        with pytest.raises(ValueError):
            export_heatmap_csvs(profiler.archive, "/tmp/should_not_exist")


class TestBoundary:
    def test_picks_most_repeated_parallel_region(self):
        cfg = _config()
        boundary = pick_boundary(cfg, 2)
        assert boundary is not None
        region_idx, iteration = boundary
        assert iteration == 2

    def test_window_clamped_to_region_length(self):
        cfg = _config()
        boundary = pick_boundary(cfg, 10_000)
        assert boundary is not None
        _, iteration = boundary
        assert iteration >= 1  # at least one pre-migration iteration...
        # ...and at least one iteration runs after the boundary.
