"""Derived NUMA metrics: lpi_NUMA equations, ratios, thresholds."""

import pytest

from repro.profiler.metrics import (
    LPI_THRESHOLD,
    MetricNames,
    domain_request_counts,
    lpi_numa,
    mismatch_ratio,
    remote_fraction,
    warrants_optimization,
)
from repro.sampling import IBS, MRK, PEBSLL, SoftIBS


class TestLpiEquation2:
    """IBS path: lpi ~= l^s_NUMA / I^s (paper eq. 2)."""

    def test_basic_ratio(self):
        metrics = {
            MetricNames.LAT_REMOTE: 500.0,
            MetricNames.SAMPLED_INSTR: 1000.0,
        }
        assert lpi_numa(metrics, IBS.capabilities) == pytest.approx(0.5)

    def test_zero_sampled_instructions(self):
        assert lpi_numa({MetricNames.LAT_REMOTE: 5.0}, IBS.capabilities) == 0.0

    def test_no_remote_latency(self):
        metrics = {MetricNames.SAMPLED_INSTR: 1000.0}
        assert lpi_numa(metrics, IBS.capabilities) == 0.0


class TestLpiEquation3:
    """PEBS-LL path: lpi ~= (l^s/E^s) * (E_NUMA / I) (paper eq. 3)."""

    def test_basic(self):
        metrics = {
            MetricNames.LAT_REMOTE: 3000.0,     # over 10 sampled remote events
            MetricNames.NUMA_MISMATCH: 10.0,
            MetricNames.EVENTS_NUMA: 5000.0,    # absolute remote events
            MetricNames.INSTR: 1_000_000.0,
        }
        # avg 300 cycles x 5e3/1e6 events per instruction = 1.5.
        assert lpi_numa(metrics, PEBSLL.capabilities) == pytest.approx(1.5)

    def test_no_samples(self):
        metrics = {MetricNames.INSTR: 100.0, MetricNames.EVENTS_NUMA: 10.0}
        assert lpi_numa(metrics, PEBSLL.capabilities) == 0.0

    def test_no_instructions(self):
        metrics = {
            MetricNames.LAT_REMOTE: 100.0,
            MetricNames.NUMA_MISMATCH: 1.0,
            MetricNames.EVENTS_NUMA: 10.0,
        }
        assert lpi_numa(metrics, PEBSLL.capabilities) == 0.0


class TestLpiUnavailable:
    def test_mrk_has_no_lpi(self):
        metrics = {MetricNames.LAT_REMOTE: 100.0, MetricNames.SAMPLED_INSTR: 10.0}
        assert lpi_numa(metrics, MRK.capabilities) is None

    def test_soft_ibs_has_no_lpi(self):
        assert lpi_numa({}, SoftIBS.capabilities) is None


class TestRatios:
    def test_remote_fraction(self):
        metrics = {MetricNames.NUMA_MATCH: 25.0, MetricNames.NUMA_MISMATCH: 75.0}
        assert remote_fraction(metrics) == pytest.approx(0.75)

    def test_remote_fraction_empty(self):
        assert remote_fraction({}) == 0.0

    def test_mismatch_ratio_seven(self):
        metrics = {MetricNames.NUMA_MATCH: 100.0, MetricNames.NUMA_MISMATCH: 700.0}
        assert mismatch_ratio(metrics) == pytest.approx(7.0)

    def test_mismatch_ratio_all_remote(self):
        assert mismatch_ratio({MetricNames.NUMA_MISMATCH: 5.0}) == float("inf")

    def test_mismatch_ratio_no_samples(self):
        assert mismatch_ratio({}) == 0.0


class TestDomainCounts:
    def test_series(self):
        metrics = {MetricNames.numa_node(0): 10.0, MetricNames.numa_node(2): 5.0}
        assert domain_request_counts(metrics, 4) == [10.0, 0.0, 5.0, 0.0]

    def test_metric_name_format(self):
        assert MetricNames.numa_node(3) == "NUMA_NODE3"


class TestThreshold:
    def test_paper_value(self):
        assert LPI_THRESHOLD == 0.1

    def test_warrants_above(self):
        assert warrants_optimization(0.466)

    def test_not_below(self):
        assert not warrants_optimization(0.035)

    def test_none_never_warrants(self):
        assert not warrants_optimization(None)
