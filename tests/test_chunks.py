"""Access chunks and their builders."""

import numpy as np
import pytest

from repro.errors import ProgramError
from repro.machine import presets
from repro.runtime.callstack import SourceLoc
from repro.runtime.chunks import (
    AccessChunk,
    compute_chunk,
    indexed_chunk,
    sweep_chunk,
)
from repro.runtime.heap import HeapAllocator

IP = SourceLoc("kernel", "k.c", 1)


@pytest.fixture
def var():
    machine = presets.generic(n_domains=2, cores_per_domain=1)
    heap = HeapAllocator(machine)
    return heap.malloc(8 * 1000, "v", (SourceLoc("main"),))


class TestAccessChunk:
    def test_instruction_floor(self, var):
        with pytest.raises(ProgramError):
            AccessChunk(var, var.base + np.arange(10) * 8, 5, IP)

    def test_bounds_check(self, var):
        with pytest.raises(ProgramError):
            AccessChunk(var, np.array([var.end]), 1, IP)
        with pytest.raises(ProgramError):
            AccessChunk(var, np.array([var.base - 1]), 1, IP)

    def test_n_accesses(self, var):
        chunk = AccessChunk(var, var.base + np.arange(7) * 8, 100, IP)
        assert chunk.n_accesses == 7

    def test_addrs_coerced_to_int64(self, var):
        chunk = AccessChunk(
            var, (var.base + np.arange(4) * 8).astype(np.float64), 10, IP
        )
        assert chunk.addrs.dtype == np.int64


class TestComputeChunk:
    def test_no_memory(self):
        chunk = compute_chunk(1000, IP)
        assert chunk.var is None
        assert chunk.n_accesses == 0
        assert chunk.n_instructions == 1000


class TestSweepChunk:
    def test_unit_stride_addresses(self, var):
        chunk = sweep_chunk(var, 10, 5, IP)
        np.testing.assert_array_equal(
            chunk.addrs, var.base + (10 + np.arange(5)) * 8
        )

    def test_strided(self, var):
        chunk = sweep_chunk(var, 0, 4, IP, stride_elems=8)
        np.testing.assert_array_equal(np.diff(chunk.addrs), 64)

    def test_elem_size(self, var):
        chunk = sweep_chunk(var, 0, 4, IP, elem_size=4)
        np.testing.assert_array_equal(np.diff(chunk.addrs), 4)

    def test_instructions_scale(self, var):
        chunk = sweep_chunk(var, 0, 100, IP, instructions_per_access=6.0)
        assert chunk.n_instructions == 600

    def test_instructions_at_least_accesses(self, var):
        chunk = sweep_chunk(var, 0, 100, IP, instructions_per_access=0.5)
        assert chunk.n_instructions == 100

    def test_empty_sweep_rejected(self, var):
        with pytest.raises(ProgramError):
            sweep_chunk(var, 0, 0, IP)

    def test_store_flag(self, var):
        assert sweep_chunk(var, 0, 1, IP, is_store=True).is_store


class TestIndexedChunk:
    def test_indirect_addresses(self, var):
        idx = np.array([5, 2, 9])
        chunk = indexed_chunk(var, idx, IP)
        np.testing.assert_array_equal(chunk.addrs, var.base + idx * 8)

    def test_empty_rejected(self, var):
        with pytest.raises(ProgramError):
            indexed_chunk(var, np.array([], dtype=np.int64), IP)

    def test_out_of_bounds_index_rejected(self, var):
        with pytest.raises(ProgramError):
            indexed_chunk(var, np.array([10_000]), IP)
