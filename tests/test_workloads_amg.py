"""AMG2006 workload: indirection, per-region patterns, solver phase."""

import pytest

from repro.analysis import NumaAnalysis, classify_ranges, merge_profiles
from repro.analysis.patterns import AccessPattern
from repro.machine import presets
from repro.profiler import NumaProfiler
from repro.runtime import ExecutionEngine
from repro.sampling import IBS
from repro.workloads import AMG2006

SMALL = dict(n_rows=100_000, solve_iters=3)


@pytest.fixture(scope="module")
def profiled():
    machine = presets.magny_cours()
    prof = NumaProfiler(IBS(period=2048))
    engine = ExecutionEngine(machine, AMG2006(**SMALL), 48, monitor=prof)
    result = engine.run()
    return engine, result, merge_profiles(prof.archive)


class TestStructure:
    def test_variables(self, profiled):
        _, _, merged = profiled
        assert {"RAP_diag_data", "RAP_diag_j", "u", "f"} <= set(merged.vars)

    def test_rap_arrays_are_nnz_sized(self):
        prog = AMG2006(**SMALL)
        assert prog.nnz == prog.NNZ_PER_ROW * prog.n_rows

    def test_alloc_path_through_setup(self, profiled):
        _, _, merged = profiled
        funcs = [f.func for f in merged.var("RAP_diag_data").alloc_path]
        assert "hypre_BoomerAMGSetup" in funcs


class TestPatternSplit:
    """The Fig. 4 vs Fig. 5 distinction: irregular whole-program pattern,
    blocked within the hot smoother region."""

    def test_whole_program_not_blocked(self, profiled):
        _, _, merged = profiled
        rep = classify_ranges(merged.var("RAP_diag_data").normalized_ranges())
        assert rep.pattern is not AccessPattern.BLOCKED

    def test_relax_region_blocked(self, profiled):
        _, _, merged = profiled
        mv = merged.var("RAP_diag_data")
        relax_ctx = next(
            p for p in mv.contexts()
            if any("Relax" in f.func for f in p)
        )
        rep = classify_ranges(mv.normalized_ranges(relax_ctx))
        assert rep.pattern is AccessPattern.BLOCKED

    def test_relax_dominates_variable_cost(self, profiled):
        _, _, merged = profiled
        an = NumaAnalysis(merged)
        share = an.context_share("RAP_diag_data", "hypre_boomerAMGRelax._omp")
        assert share > 0.6  # paper: 74.2%

    def test_f_uniform_pattern(self):
        """Dense Soft-IBS capture: every thread's gathers span the vector."""
        from repro.sampling import SoftIBS

        machine = presets.magny_cours()
        prof = NumaProfiler(SoftIBS(period=4))
        engine = ExecutionEngine(
            machine, AMG2006(n_rows=100_000, solve_iters=2), 48, monitor=prof
        )
        engine.run()
        merged = merge_profiles(prof.archive)
        rep = classify_ranges(merged.var("f").normalized_ranges())
        assert rep.mean_coverage > 0.9


class TestSolverPhase:
    def test_solver_seconds_sums_solve_regions(self, profiled):
        _, result, _ = profiled
        solver = AMG2006.solver_seconds(result)
        assert 0 < solver < result.wall_seconds
        expected = sum(
            result.region_seconds(k)
            for k in result.region_wall_cycles
            if k.startswith("solve:")
        )
        assert solver == pytest.approx(expected)

    def test_lpi_exceeds_threshold(self, profiled):
        _, _, merged = profiled
        assert NumaAnalysis(merged).program_lpi() > 0.1
