"""Golden parity: sharded runs are bit-identical to serial.

The whole point of ``repro.parallel`` is that sharding is invisible in
the results — every ``RunResult`` field, the merged CCTs, per-variable
and per-bin metrics, per-thread address ranges, and the remote-event
counters must come out *exactly* equal (no tolerances) for worker counts
1, 2, and 4 across the bundled workloads.
"""

import numpy as np
import pytest

from repro.__main__ import _builders
from repro.analysis.merge import merge_profiles
from repro.machine import presets
from repro.parallel import ParallelEngine, sharding_supported
from repro.profiler import NumaProfiler
from repro.runtime import ExecutionEngine
from repro.runtime.thread import BindingPolicy
from repro.sampling import create_mechanism

pytestmark = pytest.mark.skipif(
    not sharding_supported(), reason="platform cannot fork worker pools"
)

SCALE = 0.02
THREADS = 8
PERIOD = 512
WORKLOADS = ["sweep", "hotspot", "lulesh", "amg"]

_serial_cache: dict[str, tuple] = {}


def _machine_factory():
    return presets.PRESETS["generic"]()


def _monitor_factory():
    return NumaProfiler(create_mechanism("IBS", PERIOD))


def _serial(workload: str):
    if workload not in _serial_cache:
        build = _builders(SCALE)[workload]
        profiler = _monitor_factory()
        engine = ExecutionEngine(
            _machine_factory(), build(), THREADS,
            monitor=profiler, binding=BindingPolicy.COMPACT,
        )
        result = engine.run()
        _serial_cache[workload] = (result, profiler.archive)
    return _serial_cache[workload]


def _sharded(workload: str, n_workers: int):
    build = _builders(SCALE)[workload]
    par = ParallelEngine(
        _machine_factory, build, THREADS,
        n_workers=n_workers,
        binding=BindingPolicy.COMPACT,
        monitor_factory=_monitor_factory,
        force_sharded=True,  # exercise the protocol even at one worker
    )
    return par.run(), par.archive


def _cct_flat(cct) -> dict:
    return {
        str(node.path()): dict(node.metrics)
        for node in cct.root.walk()
        if node.metrics
    }


def _assert_results_equal(a, b):
    assert a.program == b.program
    assert a.n_threads == b.n_threads
    assert a.wall_cycles == b.wall_cycles
    assert np.array_equal(a.thread_busy_cycles, b.thread_busy_cycles)
    assert a.total_instructions == b.total_instructions
    assert a.total_accesses == b.total_accesses
    assert a.total_chunks == b.total_chunks
    assert a.dram_accesses == b.dram_accesses
    assert a.remote_dram_accesses == b.remote_dram_accesses
    assert a.monitor_overhead_cycles == b.monitor_overhead_cycles
    assert a.region_wall_cycles == b.region_wall_cycles
    assert np.array_equal(a.domain_dram_requests, b.domain_dram_requests)
    assert np.array_equal(a.domain_traffic, b.domain_traffic)


def _assert_archives_equal(serial_archive, shard_archive):
    assert set(serial_archive.profiles) == set(shard_archive.profiles)
    ms = merge_profiles(serial_archive)
    mp = merge_profiles(shard_archive)
    # Remote-event and sampling counters (includes profiler.remote_* keys).
    assert dict(ms.counters) == dict(mp.counters)
    # Code-centric and data-centric CCTs, node by node.
    assert _cct_flat(ms.cct) == _cct_flat(mp.cct)
    assert _cct_flat(ms.data_cct) == _cct_flat(mp.data_cct)
    assert set(ms.vars) == set(mp.vars)
    for name in ms.vars:
        vs, vp = ms.vars[name], mp.vars[name]
        assert dict(vs.metrics) == dict(vp.metrics), name
        assert len(vs.bin_metrics) == len(vp.bin_metrics), name
        for i, (bs, bp) in enumerate(zip(vs.bin_metrics, vp.bin_metrics)):
            assert dict(bs) == dict(bp), (name, i)
        assert vs.thread_ranges == vp.thread_ranges, name
        assert len(vs.first_touches) == len(vp.first_touches), name


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("n_workers", [1, 2, 4])
def test_sharded_matches_serial(workload, n_workers):
    serial_result, serial_archive = _serial(workload)
    shard_result, shard_archive = _sharded(workload, n_workers)
    _assert_results_equal(serial_result, shard_result)
    _assert_archives_equal(serial_archive, shard_archive)


def test_inline_fallback_matches_serial():
    """``n_workers=1`` without force_sharded runs in-process, same results."""
    serial_result, serial_archive = _serial("sweep")
    build = _builders(SCALE)["sweep"]
    par = ParallelEngine(
        _machine_factory, build, THREADS, n_workers=1,
        binding=BindingPolicy.COMPACT, monitor_factory=_monitor_factory,
    )
    result = par.run()
    _assert_results_equal(serial_result, result)
    _assert_archives_equal(serial_archive, par.archive)
    assert par.threads is not None


def test_workers_clamped_to_threads():
    """More workers than threads clamps instead of forking idle shards."""
    build = _builders(SCALE)["sweep"]
    par = ParallelEngine(
        _machine_factory, build, 2, n_workers=16,
        binding=BindingPolicy.COMPACT, monitor_factory=_monitor_factory,
        force_sharded=True,
    )
    assert par.n_workers == 2
    serial_prof = _monitor_factory()
    serial = ExecutionEngine(
        _machine_factory(), build(), 2,
        monitor=serial_prof, binding=BindingPolicy.COMPACT,
    ).run()
    _assert_results_equal(serial, par.run())
    _assert_archives_equal(serial_prof.archive, par.archive)


def test_parallel_engine_single_use():
    from repro.errors import ProgramError

    build = _builders(SCALE)["sweep"]
    par = ParallelEngine(_machine_factory, build, 2, n_workers=1)
    par.run()
    with pytest.raises(ProgramError):
        par.run()


# -- shared-memory arena parity / fallback / cleanup ------------------ #

from repro.runtime import arena as arena_mod  # noqa: E402
from repro.runtime.callstack import SourceLoc  # noqa: E402
from repro.runtime.chunks import sweep_chunk  # noqa: E402
from repro.runtime.program import Region, RegionKind  # noqa: E402

#: The paper's four Table-2 workloads (plus the existing WORKLOADS list,
#: which trades two of them for the canonical bug-pattern kernels).
PAPER_WORKLOADS = ["lulesh", "amg", "blackscholes", "umt"]


def _sharded_shm(workload: str, n_workers: int, use_shm: bool):
    build = _builders(SCALE)[workload]
    par = ParallelEngine(
        _machine_factory, build, THREADS,
        n_workers=n_workers,
        binding=BindingPolicy.COMPACT,
        monitor_factory=_monitor_factory,
        force_sharded=True,
        use_shm=use_shm,
    )
    return par.run(), par.archive, par.shm_used


@pytest.mark.skipif(
    not arena_mod.shm_available(),
    reason="host has no POSIX shared memory",
)
@pytest.mark.parametrize("workload", PAPER_WORKLOADS)
@pytest.mark.parametrize("n_workers", [1, 2, 4])
def test_arena_on_off_bit_identical(workload, n_workers):
    """The shm columnar arena is a transport, not a model change: runs
    with descriptor payloads and with pickled payloads must match
    bit for bit, and neither may leak ``/dev/shm`` segments."""
    r_on, a_on, used_on = _sharded_shm(workload, n_workers, True)
    r_off, a_off, used_off = _sharded_shm(workload, n_workers, False)
    assert used_on and not used_off
    _assert_results_equal(r_on, r_off)
    _assert_archives_equal(a_on, a_off)
    assert arena_mod.list_segments() == []


def test_shm_forced_fallback_matches_serial(monkeypatch):
    """When POSIX shm is unavailable the engine must fall back to the
    pickled-payload protocol transparently — same results, shm unused."""
    from repro.parallel import engine as par_engine

    monkeypatch.setattr(par_engine, "shm_available", lambda: False)
    serial_result, serial_archive = _serial("sweep")
    build = _builders(SCALE)["sweep"]
    par = ParallelEngine(
        _machine_factory, build, THREADS, n_workers=2,
        binding=BindingPolicy.COMPACT, monitor_factory=_monitor_factory,
        force_sharded=True,
    )
    result = par.run()
    assert par.shm_used is False
    _assert_results_equal(serial_result, result)
    _assert_archives_equal(serial_archive, par.archive)


def test_shm_requested_but_unavailable_warns_and_falls_back(monkeypatch):
    from repro.parallel import engine as par_engine

    monkeypatch.setattr(par_engine, "shm_available", lambda: False)
    build = _builders(SCALE)["sweep"]
    par = ParallelEngine(
        _machine_factory, build, THREADS, n_workers=2,
        binding=BindingPolicy.COMPACT, monitor_factory=_monitor_factory,
        force_sharded=True, use_shm=True,
    )
    par.run()
    assert par.shm_used is False


class _ExplodingProgram:
    """Toy-style program whose parallel body raises partway through a
    generate round — inside a shard worker, mid-run, with the arena's
    pools live.  (The threshold must sit inside the *first* iteration:
    the memo replays the cached trace on later ones, so a generator
    that survives iteration 1 is never called again.)"""

    name = "exploding"

    def __init__(self, n_elems: int = 20_000, steps: int = 4) -> None:
        self.n_elems = n_elems
        self.steps = steps
        self._calls = 0

    def setup(self, ctx) -> None:
        ctx.heap.malloc(self.n_elems * 8, "a", (SourceLoc("main"),))

    def regions(self, ctx):
        a = ctx.var("a")

        def init(ctx, tid):
            yield sweep_chunk(
                a, 0, self.n_elems, SourceLoc("init_loop"), is_store=True
            )

        def compute(ctx, tid):
            self._calls += 1
            if self._calls > 2:
                raise RuntimeError("boom: injected mid-run failure")
            lo, hi = ctx.partition(self.n_elems, tid)
            if hi > lo:
                yield sweep_chunk(a, lo, hi - lo, SourceLoc("compute_loop"))

        return [
            Region("init", RegionKind.SERIAL, init, SourceLoc("init")),
            Region(
                "compute._omp", RegionKind.PARALLEL, compute,
                SourceLoc("compute._omp"), repeat=self.steps,
            ),
        ]


@pytest.mark.skipif(
    not arena_mod.shm_available(),
    reason="host has no POSIX shared memory",
)
def test_arena_cleanup_after_midrun_exception():
    """A worker dying mid-run must not leak ``/dev/shm`` segments: the
    parent's abort path reaps its own arena and every worker's
    deterministically-named segments."""
    par = ParallelEngine(
        _machine_factory, lambda: _ExplodingProgram(), THREADS,
        n_workers=2, binding=BindingPolicy.COMPACT,
        monitor_factory=_monitor_factory, force_sharded=True, use_shm=True,
    )
    with pytest.raises(Exception, match="boom"):
        par.run()
    assert arena_mod.list_segments() == []
