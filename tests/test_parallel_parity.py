"""Golden parity: sharded runs are bit-identical to serial.

The whole point of ``repro.parallel`` is that sharding is invisible in
the results — every ``RunResult`` field, the merged CCTs, per-variable
and per-bin metrics, per-thread address ranges, and the remote-event
counters must come out *exactly* equal (no tolerances) for worker counts
1, 2, and 4 across the bundled workloads.
"""

import numpy as np
import pytest

from repro.__main__ import _builders
from repro.analysis.merge import merge_profiles
from repro.machine import presets
from repro.parallel import ParallelEngine, sharding_supported
from repro.profiler import NumaProfiler
from repro.runtime import ExecutionEngine
from repro.runtime.thread import BindingPolicy
from repro.sampling import create_mechanism

pytestmark = pytest.mark.skipif(
    not sharding_supported(), reason="platform cannot fork worker pools"
)

SCALE = 0.02
THREADS = 8
PERIOD = 512
WORKLOADS = ["sweep", "hotspot", "lulesh", "amg"]

_serial_cache: dict[str, tuple] = {}


def _machine_factory():
    return presets.PRESETS["generic"]()


def _monitor_factory():
    return NumaProfiler(create_mechanism("IBS", PERIOD))


def _serial(workload: str):
    if workload not in _serial_cache:
        build = _builders(SCALE)[workload]
        profiler = _monitor_factory()
        engine = ExecutionEngine(
            _machine_factory(), build(), THREADS,
            monitor=profiler, binding=BindingPolicy.COMPACT,
        )
        result = engine.run()
        _serial_cache[workload] = (result, profiler.archive)
    return _serial_cache[workload]


def _sharded(workload: str, n_workers: int):
    build = _builders(SCALE)[workload]
    par = ParallelEngine(
        _machine_factory, build, THREADS,
        n_workers=n_workers,
        binding=BindingPolicy.COMPACT,
        monitor_factory=_monitor_factory,
        force_sharded=True,  # exercise the protocol even at one worker
    )
    return par.run(), par.archive


def _cct_flat(cct) -> dict:
    return {
        str(node.path()): dict(node.metrics)
        for node in cct.root.walk()
        if node.metrics
    }


def _assert_results_equal(a, b):
    assert a.program == b.program
    assert a.n_threads == b.n_threads
    assert a.wall_cycles == b.wall_cycles
    assert np.array_equal(a.thread_busy_cycles, b.thread_busy_cycles)
    assert a.total_instructions == b.total_instructions
    assert a.total_accesses == b.total_accesses
    assert a.total_chunks == b.total_chunks
    assert a.dram_accesses == b.dram_accesses
    assert a.remote_dram_accesses == b.remote_dram_accesses
    assert a.monitor_overhead_cycles == b.monitor_overhead_cycles
    assert a.region_wall_cycles == b.region_wall_cycles
    assert np.array_equal(a.domain_dram_requests, b.domain_dram_requests)
    assert np.array_equal(a.domain_traffic, b.domain_traffic)


def _assert_archives_equal(serial_archive, shard_archive):
    assert set(serial_archive.profiles) == set(shard_archive.profiles)
    ms = merge_profiles(serial_archive)
    mp = merge_profiles(shard_archive)
    # Remote-event and sampling counters (includes profiler.remote_* keys).
    assert dict(ms.counters) == dict(mp.counters)
    # Code-centric and data-centric CCTs, node by node.
    assert _cct_flat(ms.cct) == _cct_flat(mp.cct)
    assert _cct_flat(ms.data_cct) == _cct_flat(mp.data_cct)
    assert set(ms.vars) == set(mp.vars)
    for name in ms.vars:
        vs, vp = ms.vars[name], mp.vars[name]
        assert dict(vs.metrics) == dict(vp.metrics), name
        assert len(vs.bin_metrics) == len(vp.bin_metrics), name
        for i, (bs, bp) in enumerate(zip(vs.bin_metrics, vp.bin_metrics)):
            assert dict(bs) == dict(bp), (name, i)
        assert vs.thread_ranges == vp.thread_ranges, name
        assert len(vs.first_touches) == len(vp.first_touches), name


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("n_workers", [1, 2, 4])
def test_sharded_matches_serial(workload, n_workers):
    serial_result, serial_archive = _serial(workload)
    shard_result, shard_archive = _sharded(workload, n_workers)
    _assert_results_equal(serial_result, shard_result)
    _assert_archives_equal(serial_archive, shard_archive)


def test_inline_fallback_matches_serial():
    """``n_workers=1`` without force_sharded runs in-process, same results."""
    serial_result, serial_archive = _serial("sweep")
    build = _builders(SCALE)["sweep"]
    par = ParallelEngine(
        _machine_factory, build, THREADS, n_workers=1,
        binding=BindingPolicy.COMPACT, monitor_factory=_monitor_factory,
    )
    result = par.run()
    _assert_results_equal(serial_result, result)
    _assert_archives_equal(serial_archive, par.archive)
    assert par.threads is not None


def test_workers_clamped_to_threads():
    """More workers than threads clamps instead of forking idle shards."""
    build = _builders(SCALE)["sweep"]
    par = ParallelEngine(
        _machine_factory, build, 2, n_workers=16,
        binding=BindingPolicy.COMPACT, monitor_factory=_monitor_factory,
        force_sharded=True,
    )
    assert par.n_workers == 2
    serial_prof = _monitor_factory()
    serial = ExecutionEngine(
        _machine_factory(), build(), 2,
        monitor=serial_prof, binding=BindingPolicy.COMPACT,
    ).run()
    _assert_results_equal(serial, par.run())
    _assert_archives_equal(serial_prof.archive, par.archive)


def test_parallel_engine_single_use():
    from repro.errors import ProgramError

    build = _builders(SCALE)["sweep"]
    par = ParallelEngine(_machine_factory, build, 2, n_workers=1)
    par.run()
    with pytest.raises(ProgramError):
        par.run()
