"""The four-pane full report."""

import pytest

from repro.analysis import full_report, merge_profiles
from repro.profiler import NumaProfiler
from repro.runtime import ExecutionEngine
from repro.sampling import IBS, MRK

from tests.conftest import ToyProgram


@pytest.fixture
def merged(toy_archive):
    _, _, arc = toy_archive
    return merge_profiles(arc)


class TestFullReport:
    def test_contains_all_panes(self, merged):
        text = full_report(merged)
        assert "lpi_NUMA" in text
        assert "data-centric view" in text
        assert "code-centric view" in text
        assert "address-centric view" in text
        assert "first-touch view" in text

    def test_verdict_above_threshold(self, merged):
        assert "ABOVE the 0.1 threshold" in full_report(merged)

    def test_focus_defaults_to_hottest(self, merged):
        assert "focus variable: a" in full_report(merged)

    def test_focus_override(self, merged):
        text = full_report(merged, focus_var="a")
        assert "allocated at: main > alloc_a > operator new[]" in text

    def test_scoped_pane_skipped_for_single_hot_context(self, merged):
        """The toy's remote cost is 100% in one context: no scoped pane."""
        assert "hottest context:" not in full_report(merged)

    def test_scoped_context_pane_when_cost_splits(self, small_machine):
        """Two remote-cost contexts -> the scoped view appears (the AMG
        Fig. 4 -> 5 situation)."""
        from repro.runtime.callstack import SourceLoc
        from repro.runtime.chunks import sweep_chunk
        from repro.runtime.program import Region, RegionKind

        class TwoRegions(ToyProgram):
            def regions(self, ctx):
                a = ctx.var("a")

                def init(ctx, tid):
                    yield sweep_chunk(
                        a, 0, self.n_elems, SourceLoc("init"), is_store=True
                    )

                def blocked(ctx, tid):
                    lo, hi = ctx.partition(self.n_elems, tid)
                    yield sweep_chunk(a, lo, hi - lo, SourceLoc("k1", "a.c", 1))

                def shuffled(ctx, tid):
                    owner = (tid * 5) % ctx.n_threads
                    bounds = ctx.partition(self.n_elems, owner)
                    yield sweep_chunk(
                        a, bounds[0], bounds[1] - bounds[0],
                        SourceLoc("k2", "a.c", 2),
                    )

                return [
                    Region("init", RegionKind.SERIAL, init, SourceLoc("init")),
                    Region("r1._omp", RegionKind.PARALLEL, blocked,
                           SourceLoc("r1._omp"), repeat=3),
                    Region("r2._omp", RegionKind.PARALLEL, shuffled,
                           SourceLoc("r2._omp")),
                ]

        prof = NumaProfiler(IBS(period=256))
        ExecutionEngine(small_machine, TwoRegions(), 8, monitor=prof).run()
        text = full_report(merge_profiles(prof.archive))
        assert "hottest context:" in text
        assert "scoped view" in text

    def test_mrk_verdict(self, small_machine, toy_program):
        prof = NumaProfiler(MRK(max_rate=1e9))
        ExecutionEngine(small_machine, toy_program, 8, monitor=prof).run()
        text = full_report(merge_profiles(prof.archive))
        assert "lpi_NUMA unavailable" in text
        assert "remote fraction" in text

    def test_unknown_focus_var_omits_panes(self, merged):
        text = full_report(merged, focus_var="ghost")
        assert "focus variable" not in text
