"""Public API integrity: exports resolve, modules are documented."""

import importlib
import inspect
import pkgutil

import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_no_duplicate_exports(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(p.isdigit() for p in parts)

    def test_subpackage_alls_resolve(self):
        for mod_name in (
            "repro.machine", "repro.runtime", "repro.sampling",
            "repro.profiler", "repro.analysis", "repro.optim",
            "repro.workloads", "repro.bench",
        ):
            mod = importlib.import_module(mod_name)
            for name in getattr(mod, "__all__", []):
                assert hasattr(mod, name), f"{mod_name}.{name} missing"


def _walk_modules():
    out = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        out.append(info.name)
    return out


class TestDocumentation:
    @pytest.mark.parametrize("mod_name", _walk_modules())
    def test_every_module_has_a_docstring(self, mod_name):
        mod = importlib.import_module(mod_name)
        assert mod.__doc__ and len(mod.__doc__.strip()) > 20, mod_name

    def test_public_classes_documented(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(name)
        assert undocumented == []

    def test_public_class_methods_documented(self):
        """Every public method on the main API classes carries a docstring."""
        from repro import (
            CCT, ExecutionEngine, Machine, NumaAnalysis, NumaProfiler,
            NumaTopology, PageTable,
        )

        undocumented = []
        for cls in (
            CCT, ExecutionEngine, Machine, NumaAnalysis, NumaProfiler,
            NumaTopology, PageTable,
        ):
            for name, member in inspect.getmembers(cls, inspect.isfunction):
                if name.startswith("_"):
                    continue
                if not (member.__doc__ and member.__doc__.strip()):
                    undocumented.append(f"{cls.__name__}.{name}")
        assert undocumented == []
