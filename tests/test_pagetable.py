"""Page table: mapping, placement policies, first touch, protection.

Includes hypothesis property tests on the placement invariants.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AllocationError, InvalidAddressError, ProtectionError
from repro.machine.frames import FrameManager
from repro.machine.pagetable import UNBOUND, PageTable, PlacementPolicy
from repro.machine.topology import NumaTopology

PAGE = 4096


def make_table(n_domains=4, frames=10_000):
    topo = NumaTopology(n_domains=n_domains, cores_per_domain=2)
    return PageTable(topo, FrameManager(topo, frames))


class TestMapping:
    def test_map_and_lookup(self):
        pt = make_table()
        seg = pt.map_segment(0x10000, 5 * PAGE, label="v")
        assert seg.n_pages == 5
        assert pt.segment_of_addr(0x10000) is seg
        assert pt.segment_of_addr(0x10000 + 5 * PAGE - 1) is seg

    def test_unaligned_extent_rounds_to_pages(self):
        pt = make_table()
        seg = pt.map_segment(100, 50)
        assert seg.start_page == 0
        assert seg.n_pages == 1

    def test_unmapped_address_raises(self):
        pt = make_table()
        pt.map_segment(0x10000, PAGE)
        with pytest.raises(InvalidAddressError):
            pt.segment_of_addr(0x50000)

    def test_overlap_rejected(self):
        pt = make_table()
        pt.map_segment(0x10000, 4 * PAGE)
        with pytest.raises(AllocationError):
            pt.map_segment(0x10000 + 2 * PAGE, 4 * PAGE)

    def test_adjacent_segments_allowed(self):
        pt = make_table()
        pt.map_segment(0, 2 * PAGE)
        pt.map_segment(2 * PAGE, 2 * PAGE)
        assert len(pt.segments) == 2

    def test_unmap_releases_frames(self):
        pt = make_table()
        seg = pt.map_segment(0, 8 * PAGE, PlacementPolicy.BIND, domains=[1])
        used_before = int(pt.frames.used[1])
        pt.unmap_segment(seg)
        assert int(pt.frames.used[1]) == used_before - 8

    def test_double_unmap_raises(self):
        pt = make_table()
        seg = pt.map_segment(0, PAGE)
        pt.unmap_segment(seg)
        with pytest.raises(AllocationError):
            pt.unmap_segment(seg)

    def test_nonpositive_size_rejected(self):
        pt = make_table()
        with pytest.raises(AllocationError):
            pt.map_segment(0, 0)


class TestPolicies:
    def test_first_touch_starts_unbound(self):
        pt = make_table()
        seg = pt.map_segment(0, 4 * PAGE)
        assert np.all(seg.domains == UNBOUND)

    def test_bind_policy(self):
        pt = make_table()
        seg = pt.map_segment(0, 4 * PAGE, PlacementPolicy.BIND, domains=[2])
        assert np.all(seg.domains == 2)

    def test_bind_requires_single_domain(self):
        pt = make_table()
        with pytest.raises(AllocationError):
            pt.map_segment(0, PAGE, PlacementPolicy.BIND, domains=[0, 1])

    def test_interleave_round_robin(self):
        pt = make_table()
        seg = pt.map_segment(0, 8 * PAGE, PlacementPolicy.INTERLEAVE)
        np.testing.assert_array_equal(seg.domains, [0, 1, 2, 3, 0, 1, 2, 3])

    def test_interleave_domain_subset(self):
        pt = make_table()
        seg = pt.map_segment(
            0, 4 * PAGE, PlacementPolicy.INTERLEAVE, domains=[1, 3]
        )
        np.testing.assert_array_equal(seg.domains, [1, 3, 1, 3])

    def test_blockwise_contiguous_blocks(self):
        pt = make_table()
        seg = pt.map_segment(
            0, 8 * PAGE, PlacementPolicy.BLOCKWISE, domains=[0, 1, 2, 3]
        )
        np.testing.assert_array_equal(seg.domains, [0, 0, 1, 1, 2, 2, 3, 3])

    def test_blockwise_uneven_pages(self):
        pt = make_table()
        seg = pt.map_segment(
            0, 5 * PAGE, PlacementPolicy.BLOCKWISE, domains=[0, 1]
        )
        # Monotone non-decreasing domain assignment covering both domains.
        assert sorted(set(seg.domains.tolist())) == [0, 1]
        assert np.all(np.diff(seg.domains) >= 0)

    def test_invalid_domain_rejected(self):
        pt = make_table()
        with pytest.raises(AllocationError):
            pt.map_segment(0, PAGE, PlacementPolicy.BIND, domains=[9])

    def test_blockwise_requires_domains(self):
        pt = make_table()
        with pytest.raises(AllocationError):
            pt.map_segment(0, PAGE, PlacementPolicy.BLOCKWISE)


class TestFirstTouch:
    def test_touch_binds_to_toucher_domain(self):
        pt = make_table()
        pt.map_segment(0, 4 * PAGE)
        # CPU 2 lives in domain 1 (2 cores per domain).
        newly = pt.touch_pages(np.array([0, 1]), cpu=2)
        assert sorted(newly.tolist()) == [0, 1]
        np.testing.assert_array_equal(
            pt.domains_of_addrs(np.array([0, PAGE])), [1, 1]
        )

    def test_second_touch_does_not_rebind(self):
        pt = make_table()
        pt.map_segment(0, 2 * PAGE)
        pt.touch_pages(np.array([0]), cpu=0)
        newly = pt.touch_pages(np.array([0]), cpu=6)  # domain 3
        assert newly.size == 0
        assert pt.domains_of_addrs(np.array([0]))[0] == 0

    def test_touch_records_first_toucher_cpu(self):
        pt = make_table()
        seg = pt.map_segment(0, 2 * PAGE)
        pt.touch_pages(np.array([1]), cpu=5)
        assert seg.first_toucher_cpu[1] == 5
        assert seg.first_toucher_cpu[0] == -1

    def test_touch_spills_when_domain_full(self):
        topo = NumaTopology(n_domains=2, cores_per_domain=1)
        pt = PageTable(topo, FrameManager(topo, frames_per_domain=1))
        pt.map_segment(0, 2 * PAGE)
        pt.touch_pages(np.array([0]), cpu=0)
        pt.touch_pages(np.array([1]), cpu=0)  # domain 0 full -> spills to 1
        doms = pt.domains_of_addrs(np.array([0, PAGE]))
        assert doms[0] == 0 and doms[1] == 1

    def test_eagerly_bound_policies_ignore_touch(self):
        pt = make_table()
        pt.map_segment(0, 4 * PAGE, PlacementPolicy.INTERLEAVE)
        newly = pt.touch_pages(np.array([0, 1, 2, 3]), cpu=0)
        assert newly.size == 0


class TestDomainsOfAddrs:
    def test_unbound_reported(self):
        pt = make_table()
        pt.map_segment(0, 2 * PAGE)
        np.testing.assert_array_equal(
            pt.domains_of_addrs(np.array([0, PAGE + 5])), [UNBOUND, UNBOUND]
        )

    def test_cross_segment_query(self):
        pt = make_table()
        pt.map_segment(0, PAGE, PlacementPolicy.BIND, domains=[0])
        pt.map_segment(0x100000, PAGE, PlacementPolicy.BIND, domains=[3])
        doms = pt.domains_of_addrs(np.array([10, 0x100000 + 10]))
        np.testing.assert_array_equal(doms, [0, 3])

    def test_unmapped_page_raises(self):
        pt = make_table()
        pt.map_segment(0, PAGE)
        with pytest.raises(InvalidAddressError):
            pt.domains_of_addrs(np.array([0x900000]))


class TestProtection:
    def test_protect_interior_pages_only(self):
        pt = make_table()
        pt.map_segment(0x1000, 3 * PAGE + 100)  # pages 1..4 (4 partially)
        n = pt.protect_range(0x1000 + 10, 3 * PAGE)
        # Only pages fully inside [0x1010, 0x1010 + 3*PAGE) protected.
        assert n == 2
        mask = pt.protected_mask(np.array([1, 2, 3, 4]))
        np.testing.assert_array_equal(mask, [False, True, True, False])

    def test_protect_aligned_range(self):
        pt = make_table()
        pt.map_segment(0x2000, 4 * PAGE)
        assert pt.protect_range(0x2000, 4 * PAGE) == 4

    def test_protect_subpage_range_protects_nothing(self):
        pt = make_table()
        pt.map_segment(0x2000, 4 * PAGE)
        assert pt.protect_range(0x2000 + 100, 200) == 0

    def test_protect_beyond_segment_raises(self):
        pt = make_table()
        pt.map_segment(0x2000, PAGE)
        with pytest.raises(ProtectionError):
            pt.protect_range(0x2000, 2 * PAGE)

    def test_unprotect(self):
        pt = make_table()
        pt.map_segment(0x2000, 2 * PAGE)
        pt.protect_range(0x2000, 2 * PAGE)
        pt.unprotect_pages(np.array([2]))
        mask = pt.protected_mask(np.array([2, 3]))
        np.testing.assert_array_equal(mask, [False, True])


class TestMigration:
    def test_migrate_to_interleave(self):
        pt = make_table()
        seg = pt.map_segment(0, 4 * PAGE, PlacementPolicy.BIND, domains=[0])
        pt.migrate_segment(seg, PlacementPolicy.INTERLEAVE)
        np.testing.assert_array_equal(seg.domains, [0, 1, 2, 3])

    def test_migrate_frame_accounting_balances(self):
        pt = make_table()
        seg = pt.map_segment(0, 8 * PAGE, PlacementPolicy.BIND, domains=[0])
        total_before = pt.frames.total_available()
        pt.migrate_segment(seg, PlacementPolicy.BLOCKWISE, domains=[0, 1])
        assert pt.frames.total_available() == total_before

    def test_migrate_to_first_touch_resets(self):
        pt = make_table()
        seg = pt.map_segment(0, 2 * PAGE, PlacementPolicy.BIND, domains=[1])
        pt.migrate_segment(seg, PlacementPolicy.FIRST_TOUCH)
        assert np.all(seg.domains == UNBOUND)

    def test_migrate_counts_freed_frames_toward_capacity(self):
        # Migrating BIND[0] -> BIND[0] on a full domain must succeed: the
        # frames about to be freed cover the frames about to be reserved.
        pt = make_table(frames=8)
        seg = pt.map_segment(0, 8 * PAGE, PlacementPolicy.BIND, domains=[0])
        assert pt.frames.available(0) == 0
        pt.migrate_segment(seg, PlacementPolicy.BIND, domains=[0])
        np.testing.assert_array_equal(seg.domains, [0] * 8)


class TestMigrateAtomic:
    """A failed migration must leave every piece of state untouched."""

    def _snapshot(self, pt, seg):
        return (
            seg.domains.copy(),
            seg.first_toucher_cpu.copy(),
            seg.policy,
            seg.n_unbound,
            pt.frames.used.copy(),
            pt.epoch,
        )

    def _assert_unchanged(self, pt, seg, snap):
        domains, toucher, policy, n_unbound, used, epoch = snap
        np.testing.assert_array_equal(seg.domains, domains)
        np.testing.assert_array_equal(seg.first_toucher_cpu, toucher)
        assert seg.policy is policy
        assert seg.n_unbound == n_unbound
        np.testing.assert_array_equal(pt.frames.used, used)
        assert pt.epoch == epoch

    def test_exhausted_domain_aborts_bind_cleanly(self):
        pt = make_table(frames=8)
        seg = pt.map_segment(0, 4 * PAGE, PlacementPolicy.BIND, domains=[0])
        # Fill domain 1 completely with an unrelated segment.
        pt.map_segment(0x100000, 8 * PAGE, PlacementPolicy.BIND, domains=[1])
        snap = self._snapshot(pt, seg)
        with pytest.raises(AllocationError):
            pt.migrate_segment(seg, PlacementPolicy.BIND, domains=[1])
        self._assert_unchanged(pt, seg, snap)

    def test_exhausted_domain_aborts_interleave_midloop(self):
        # INTERLEAVE over domains where a later one is exhausted: the old
        # code reserved domain-by-domain and leaked earlier reservations.
        pt = make_table(frames=8)
        pt.map_segment(0x100000, 8 * PAGE, PlacementPolicy.BIND, domains=[3])
        seg = pt.map_segment(0, 8 * PAGE, PlacementPolicy.BIND, domains=[0])
        snap = self._snapshot(pt, seg)
        with pytest.raises(AllocationError):
            pt.migrate_segment(
                seg, PlacementPolicy.INTERLEAVE, domains=[1, 2, 3]
            )
        self._assert_unchanged(pt, seg, snap)

    def test_exhausted_domain_aborts_blockwise_midloop(self):
        pt = make_table(frames=8)
        pt.map_segment(0x100000, 8 * PAGE, PlacementPolicy.BIND, domains=[2])
        seg = pt.map_segment(0, 8 * PAGE, PlacementPolicy.BIND, domains=[0])
        snap = self._snapshot(pt, seg)
        with pytest.raises(AllocationError):
            pt.migrate_segment(seg, PlacementPolicy.BLOCKWISE, domains=[1, 2])
        self._assert_unchanged(pt, seg, snap)

    def test_bad_domain_argument_aborts_cleanly(self):
        pt = make_table()
        seg = pt.map_segment(0, 4 * PAGE, PlacementPolicy.BIND, domains=[0])
        snap = self._snapshot(pt, seg)
        with pytest.raises(AllocationError):
            pt.migrate_segment(seg, PlacementPolicy.BIND, domains=[99])
        with pytest.raises(AllocationError):
            pt.migrate_segment(seg, PlacementPolicy.BLOCKWISE, domains=None)
        self._assert_unchanged(pt, seg, snap)


class TestStatistics:
    def test_domain_page_counts(self):
        pt = make_table()
        pt.map_segment(0, 4 * PAGE, PlacementPolicy.BIND, domains=[2])
        pt.map_segment(0x100000, 4 * PAGE, PlacementPolicy.INTERLEAVE)
        counts = pt.domain_page_counts()
        assert counts[2] == 5  # 4 bound + 1 interleaved
        assert counts.sum() == 8


# ---------------------------------------------------------------------- #
# property-based tests
# ---------------------------------------------------------------------- #


@given(
    n_pages=st.integers(min_value=1, max_value=64),
    n_domains=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=50, deadline=None)
def test_interleave_is_balanced(n_pages, n_domains):
    """Interleaved placement never puts two more pages on one domain than
    another."""
    topo = NumaTopology(n_domains=n_domains, cores_per_domain=1)
    pt = PageTable(topo, FrameManager(topo, 10_000))
    seg = pt.map_segment(0, n_pages * PAGE, PlacementPolicy.INTERLEAVE)
    counts = np.bincount(seg.domains, minlength=n_domains)
    assert counts.max() - counts.min() <= 1


@given(
    n_pages=st.integers(min_value=1, max_value=64),
    n_domains=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=50, deadline=None)
def test_blockwise_is_monotone_and_complete(n_pages, n_domains):
    """Block-wise placement yields monotone, frame-balanced assignment."""
    topo = NumaTopology(n_domains=n_domains, cores_per_domain=1)
    pt = PageTable(topo, FrameManager(topo, 10_000))
    seg = pt.map_segment(
        0, n_pages * PAGE, PlacementPolicy.BLOCKWISE,
        domains=list(range(n_domains)),
    )
    assert np.all(seg.domains != UNBOUND)
    assert np.all(np.diff(seg.domains) >= 0)
    # Frame accounting matches page counts exactly.
    counts = np.bincount(seg.domains, minlength=n_domains)
    np.testing.assert_array_equal(counts, pt.frames.used)


@given(
    touch_order=st.permutations(list(range(8))),
    cpus=st.lists(st.integers(min_value=0, max_value=7), min_size=8, max_size=8),
)
@settings(max_examples=30, deadline=None)
def test_first_touch_binding_is_sticky(touch_order, cpus):
    """Each page binds exactly once, to its first toucher's domain."""
    topo = NumaTopology(n_domains=4, cores_per_domain=2)
    pt = PageTable(topo, FrameManager(topo, 10_000))
    seg = pt.map_segment(0, 8 * PAGE)
    first = {}
    for page, cpu in zip(touch_order, cpus):
        pt.touch_pages(np.array([page]), cpu)
        first.setdefault(page, topo.domain_of_cpu(cpu))
        # re-touch from another cpu must not change anything
        pt.touch_pages(np.array([page]), (cpu + 2) % 8)
    for page, dom in first.items():
        assert seg.domains[page] == dom
