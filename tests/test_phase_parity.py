"""Golden parity: phase-adaptive extrapolation is invisible in the results.

Phase detection (:mod:`repro.runtime.phase`) lets the engine stop
simulating a repeated region once ``--extrap-warmup`` consecutive
iterations produced bit-identical deltas, and produce the remaining
iterations by closed-form multiplication. The contract has two tiers:

* **exact** (ε = 0): with a deterministic monitor (or none), every
  ``RunResult`` field, the merged CCTs, per-variable and per-bin
  metrics, and the counters come out exactly equal (``==``, no
  tolerances) with extrapolation on or off — serially and across
  worker counts, and even when a live-migration schedule fires
  mid-phase and forces a break back to live simulation.
* **ε-accounted**: with a jittered sampling mechanism (IBS), the
  engine-pure integers (instructions, accesses, chunks, DRAM request
  and traffic vectors) are still exact; cycle-valued outputs deviate
  within the declared ε, and the phase report must validate.
"""

import numpy as np
import pytest

from repro.__main__ import _builders
from repro.analysis.merge import merge_profiles
from repro.machine import presets
from repro.machine.pagetable import PlacementPolicy
from repro.parallel import ParallelEngine, sharding_supported
from repro.profiler import NumaProfiler
from repro.runtime import ExecutionEngine
from repro.runtime.phase import validate_phase_report
from repro.runtime.thread import BindingPolicy
from repro.sampling import create_mechanism

SCALE = 0.02
THREADS = 8
#: The paper's four benchmarks (Table 2).
WORKLOADS = ["lulesh", "amg", "blackscholes", "umt"]

#: Engine-pure integer fields: must stay exact even in ε mode.
INT_FIELDS = (
    "total_instructions", "total_accesses", "total_chunks",
    "dram_accesses", "remote_dram_accesses",
)

_exact_cache: dict[str, tuple] = {}


def _machine_factory():
    return presets.PRESETS["generic"]()


def _dear_factory():
    """Deterministic mechanism: period-1 DEAR reaches a selection fixed
    point, so extrapolation runs in exact (ε = 0) mode."""
    return NumaProfiler(create_mechanism("DEAR", 1), memoize=True)


def _ibs_factory():
    """Jittered mechanism: IBS randomizes per-sample skid, so steady
    iterations differ in cycle deltas and extrapolation must fall back
    to ε accounting."""
    return NumaProfiler(create_mechanism("IBS", 512), memoize=True)


def _run_serial(workload: str, *, extrapolate: bool, profiler=None,
                schedule=None):
    build = _builders(SCALE)[workload]
    engine = ExecutionEngine(
        _machine_factory(), build(), THREADS,
        monitor=profiler, binding=BindingPolicy.COMPACT,
        memoize=True, schedule=schedule, extrapolate=extrapolate,
    )
    result = engine.run()
    archive = profiler.archive if profiler is not None else None
    return result, archive, engine


def _exact(workload: str):
    """Extrapolation-off serial run: the golden fully-simulated result."""
    if workload not in _exact_cache:
        result, archive, _ = _run_serial(
            workload, extrapolate=False, profiler=_dear_factory()
        )
        _exact_cache[workload] = (result, archive)
    return _exact_cache[workload]


def _cct_flat(cct) -> dict:
    return {
        str(node.path()): dict(node.metrics)
        for node in cct.root.walk()
        if node.metrics
    }


def _assert_results_equal(a, b):
    assert a.program == b.program
    assert a.n_threads == b.n_threads
    assert a.wall_cycles == b.wall_cycles
    assert np.array_equal(a.thread_busy_cycles, b.thread_busy_cycles)
    assert a.total_instructions == b.total_instructions
    assert a.total_accesses == b.total_accesses
    assert a.total_chunks == b.total_chunks
    assert a.dram_accesses == b.dram_accesses
    assert a.remote_dram_accesses == b.remote_dram_accesses
    assert a.monitor_overhead_cycles == b.monitor_overhead_cycles
    assert a.region_wall_cycles == b.region_wall_cycles
    assert np.array_equal(a.domain_dram_requests, b.domain_dram_requests)
    assert np.array_equal(a.domain_traffic, b.domain_traffic)


def _assert_archives_equal(ref_archive, extrap_archive):
    assert set(ref_archive.profiles) == set(extrap_archive.profiles)
    ms = merge_profiles(ref_archive)
    mm = merge_profiles(extrap_archive)
    assert dict(ms.counters) == dict(mm.counters)
    assert _cct_flat(ms.cct) == _cct_flat(mm.cct)
    assert _cct_flat(ms.data_cct) == _cct_flat(mm.data_cct)
    assert set(ms.vars) == set(mm.vars)
    for name in ms.vars:
        vs, vm = ms.vars[name], mm.vars[name]
        assert dict(vs.metrics) == dict(vm.metrics), name
        assert len(vs.bin_metrics) == len(vm.bin_metrics), name
        for i, (bs, bm) in enumerate(zip(vs.bin_metrics, vm.bin_metrics)):
            assert dict(bs) == dict(bm), (name, i)
        assert vs.thread_ranges == vm.thread_ranges, name
        assert len(vs.first_touches) == len(vm.first_touches), name


def _assert_report_engaged(report: dict):
    assert report is not None and report["enabled"]
    assert validate_phase_report(report) == []
    assert report["coverage_pct"] > 0, "extrapolation never engaged"


# ---------------------------------------------------------------------- #
# exact mode: serial extrapolated vs serial simulated
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize("workload", WORKLOADS)
def test_serial_extrapolated_matches_exact(workload):
    ref_result, ref_archive = _exact(workload)
    result, archive, engine = _run_serial(
        workload, extrapolate=True, profiler=_dear_factory()
    )
    _assert_results_equal(ref_result, result)
    _assert_archives_equal(ref_archive, archive)
    report = engine.phase_report
    _assert_report_engaged(report)
    assert report["epsilon"] == 0.0
    assert report["extrapolated_eps"] == 0


# ---------------------------------------------------------------------- #
# exact mode: sharded extrapolated vs serial simulated
# ---------------------------------------------------------------------- #


@pytest.mark.skipif(
    not sharding_supported(), reason="platform cannot fork worker pools"
)
@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("n_workers", [1, 2, 4])
def test_sharded_extrapolated_matches_exact(workload, n_workers):
    ref_result, ref_archive = _exact(workload)
    build = _builders(SCALE)[workload]
    par = ParallelEngine(
        _machine_factory, build, THREADS,
        n_workers=n_workers,
        binding=BindingPolicy.COMPACT,
        monitor_factory=_dear_factory,
        force_sharded=n_workers > 1,
        memoize=True,
        extrapolate=True,
    )
    result = par.run()
    _assert_results_equal(ref_result, result)
    _assert_archives_equal(ref_archive, par.archive)
    _assert_report_engaged(par.phase_report)
    assert par.phase_report["epsilon"] == 0.0


# ---------------------------------------------------------------------- #
# phase break: a schedule firing mid-phase forces live re-simulation
# ---------------------------------------------------------------------- #


def _long_sweep():
    """The partitioned sweep with enough steps (12) for the detector to
    arm, extrapolate, break on a mid-phase migration, re-arm, and
    extrapolate again within one region."""
    from repro.workloads import PartitionedSweep

    return PartitionedSweep(n_elems=int(400_000 * SCALE), steps=12)


def _sweep_schedule(iteration: int):
    """A rebind of ``data`` at the given iteration of the sweep's
    repeated region (region 1) — on the autotune/live-migration path."""
    from repro.optim.policies import MigrationStep, PolicySchedule

    schedule = PolicySchedule()
    schedule.add(
        1, iteration,
        MigrationStep("data", PlacementPolicy.BLOCKWISE, (0, 1, 2, 3)),
    )
    return schedule


def _run_long_sweep(*, extrapolate: bool, schedule=None):
    profiler = _dear_factory()
    engine = ExecutionEngine(
        _machine_factory(), _long_sweep(), THREADS,
        monitor=profiler, binding=BindingPolicy.COMPACT,
        memoize=True, schedule=schedule, extrapolate=extrapolate,
    )
    return engine.run(), profiler.archive, engine


def test_schedule_break_mid_phase_stays_identical():
    # Iteration 6 is well past arming (warmup 2 → armed after iteration
    # 2), so the detector is already extrapolating when the migration
    # fires; it must stop at the boundary, re-simulate live, re-arm, and
    # still produce bit-identical results.
    ref_result, ref_archive, ref_engine = _run_long_sweep(
        extrapolate=False, schedule=_sweep_schedule(6),
    )
    result, archive, engine = _run_long_sweep(
        extrapolate=True, schedule=_sweep_schedule(6),
    )
    assert engine.applied_actions == ref_engine.applied_actions
    assert [a.ok for a in engine.applied_actions] == [True]
    _assert_results_equal(ref_result, result)
    _assert_archives_equal(ref_archive, archive)
    report = engine.phase_report
    _assert_report_engaged(report)
    # The epoch bump mid-region must register as at least one phase
    # break (extrapolation stopped at the boundary and re-warmed).
    assert report["breaks"] >= 1


@pytest.mark.skipif(
    not sharding_supported(), reason="platform cannot fork worker pools"
)
@pytest.mark.parametrize("n_workers", [2, 4])
def test_schedule_break_sharded_stays_identical(n_workers):
    ref_result, ref_archive, ref_engine = _run_long_sweep(
        extrapolate=False, schedule=_sweep_schedule(6),
    )
    par = ParallelEngine(
        _machine_factory, _long_sweep, THREADS,
        n_workers=n_workers,
        binding=BindingPolicy.COMPACT,
        monitor_factory=_dear_factory,
        force_sharded=True,
        memoize=True,
        extrapolate=True,
        schedule=_sweep_schedule(6),
    )
    result = par.run()
    assert par.applied_actions == ref_engine.applied_actions
    _assert_results_equal(ref_result, result)
    _assert_archives_equal(ref_archive, par.archive)
    _assert_report_engaged(par.phase_report)


# ---------------------------------------------------------------------- #
# ε mode: jittered sampling — pure ints exact, cycles within ε
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize("workload", ["lulesh", "blackscholes"])
def test_eps_mode_pure_ints_exact_and_report_valid(workload):
    ref_result, _, _ = _run_serial(
        workload, extrapolate=False, profiler=_ibs_factory()
    )
    result, _, engine = _run_serial(
        workload, extrapolate=True, profiler=_ibs_factory()
    )
    # Engine-pure integers are never approximated, even in ε mode.
    for f in INT_FIELDS:
        assert getattr(ref_result, f) == getattr(result, f), f
    assert np.array_equal(
        ref_result.domain_dram_requests, result.domain_dram_requests
    )
    assert np.array_equal(ref_result.domain_traffic, result.domain_traffic)

    report = engine.phase_report
    _assert_report_engaged(report)
    assert report["extrapolated_eps"] > 0, "ε mode never engaged"
    assert report["epsilon"] > 0.0
    # Cycle outputs deviate, but only by the order of the declared ε:
    # the window mean is an unbiased estimate of the jittered monitor
    # cost, so the relative wall deviation stays a small multiple of ε.
    dev = abs(result.wall_cycles - ref_result.wall_cycles)
    rel = dev / ref_result.wall_cycles
    assert rel <= max(10.0 * report["epsilon"], 1e-6), (
        f"wall deviation {rel:.3g} far exceeds declared eps "
        f"{report['epsilon']:.3g}"
    )


def test_exact_preferred_over_eps_when_monitor_fixed():
    """With a deterministic monitor, every extrapolated iteration must
    use the exact path — ε accounting is a fallback, not the default."""
    _, _, engine = _run_serial(
        "blackscholes", extrapolate=True, profiler=_dear_factory()
    )
    report = engine.phase_report
    _assert_report_engaged(report)
    assert report["extrapolated_eps"] == 0
    assert report["extrapolated_exact"] > 0


def test_extrapolation_off_attaches_no_report():
    _, _, engine = _run_serial(
        "blackscholes", extrapolate=False, profiler=_dear_factory()
    )
    assert engine.phase_report is None
