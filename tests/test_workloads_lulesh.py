"""LULESH workload: structure, patterns, and optimization response.

Uses reduced problem sizes; the full-scale shape checks live in the
benchmarks.
"""

import pytest

from repro.analysis import NumaAnalysis, classify_ranges, merge_profiles
from repro.analysis.patterns import AccessPattern
from repro.machine import presets
from repro.optim.policies import NumaTuning, PlacementSpec
from repro.machine.pagetable import PlacementPolicy
from repro.profiler import NumaProfiler
from repro.runtime import ExecutionEngine
from repro.runtime.heap import VariableKind
from repro.sampling import IBS
from repro.workloads import Lulesh
from repro.workloads.lulesh import NODAL_ARRAYS

SMALL = dict(n_nodes=120_000, steps=3)


@pytest.fixture(scope="module")
def profiled():
    machine = presets.magny_cours()
    prof = NumaProfiler(IBS(period=2048))
    engine = ExecutionEngine(machine, Lulesh(**SMALL), 48, monitor=prof)
    result = engine.run()
    return engine, result, merge_profiles(prof.archive)


class TestStructure:
    def test_seven_monitored_variables(self, profiled):
        _, _, merged = profiled
        assert set(merged.vars) == set(NODAL_ARRAYS) | {"nodelist"}

    def test_nodelist_is_stack(self, profiled):
        _, _, merged = profiled
        assert merged.var("nodelist").kind is VariableKind.STACK
        assert merged.var("z").kind is VariableKind.HEAP

    def test_alloc_paths_match_paper(self, profiled):
        _, _, merged = profiled
        funcs = [f.func for f in merged.var("z").alloc_path]
        assert "Domain::AllocateNodalPersistent" in funcs
        assert funcs[-1] == "operator new[]"
        assert merged.var("z").alloc_path[-1].line == 2159

    def test_first_touch_serial_init(self, profiled):
        _, _, merged = profiled
        paths = merged.var("z").first_touch_paths()
        assert any(
            any("init_z" == f.func for f in p) for p in paths
        )


class TestNumaCharacter:
    def test_all_samples_target_domain0(self, profiled):
        _, _, merged = profiled
        an = NumaAnalysis(merged)
        balance = an.domain_balance()
        assert balance[0] == balance.sum()

    def test_mismatch_ratio_near_seven(self, profiled):
        """Paper: M_r roughly seven times M_l for z."""
        _, _, merged = profiled
        an = NumaAnalysis(merged)
        ratio = an.variable_summary("z").mismatch_ratio
        assert 4.0 < ratio < 10.0

    def test_blocked_pattern_for_z(self, profiled):
        _, _, merged = profiled
        rep = classify_ranges(merged.var("z").normalized_ranges())
        assert rep.pattern is AccessPattern.BLOCKED

    def test_program_warrants_optimization(self, profiled):
        _, _, merged = profiled
        an = NumaAnalysis(merged)
        assert an.program_lpi() > 0.1


class TestOptimization:
    def test_blockwise_tuning_speeds_up(self):
        base = ExecutionEngine(
            presets.magny_cours(), Lulesh(**SMALL), 48
        ).run()
        spec = PlacementSpec(PlacementPolicy.BLOCKWISE, tuple(range(8)))
        tuning = NumaTuning(
            placement={v: spec for v in NODAL_ARRAYS + ("nodelist",)},
            parallel_init=set(NODAL_ARRAYS) | {"nodelist"},
        )
        opt = ExecutionEngine(
            presets.magny_cours(), Lulesh(tuning, **SMALL), 48
        ).run()
        assert opt.wall_seconds < base.wall_seconds
        assert opt.remote_dram_fraction < 0.2

    def test_partial_init_vars_colocate_velocities(self):
        machine = presets.power7()
        prog = Lulesh(partial_init_vars=("xd", "yd", "zd"), **SMALL)
        ExecutionEngine(machine, prog, 128).run()
        segs = {s.label: s for s in machine.page_table.segments}
        assert len(set(segs["xd"].domains.tolist())) == 4  # co-located
        assert set(segs["x"].domains.tolist()) == {0}      # centralized
