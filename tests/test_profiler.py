"""The online profiler: attribution correctness against ground truth."""

import pytest

from repro.machine import presets
from repro.profiler import NumaProfiler
from repro.profiler.cct import DUMMY_ACCESS, DUMMY_FIRST_TOUCH
from repro.profiler.metrics import MetricNames
from repro.runtime import ExecutionEngine
from repro.sampling import IBS, MRK, SoftIBS

from tests.conftest import ToyProgram


def run_toy(mechanism, n_threads=8, **toy_kwargs):
    machine = presets.generic(n_domains=4, cores_per_domain=2)
    profiler = NumaProfiler(mechanism)
    engine = ExecutionEngine(
        machine, ToyProgram(**toy_kwargs), n_threads, monitor=profiler
    )
    result = engine.run()
    return engine, result, profiler.archive


class TestArchiveStructure:
    def test_one_profile_per_thread(self):
        _, _, arc = run_toy(IBS(period=512))
        assert sorted(arc.profiles) == list(range(8))
        assert arc.mechanism_name == "IBS"
        assert arc.n_domains == 4

    def test_run_result_attached(self):
        _, result, arc = run_toy(IBS(period=512))
        assert arc.run_result is result


class TestLocalRemoteClassification:
    def test_worker_thread_sees_all_remote(self):
        """Thread 7 (domain 3) accessing domain-0 pages: M_l == 0."""
        _, _, arc = run_toy(IBS(period=256))
        rec = arc.thread(7).vars["a"]
        assert rec.metrics[MetricNames.NUMA_MISMATCH] > 0
        assert rec.metrics.get(MetricNames.NUMA_MATCH, 0.0) == 0.0

    def test_domain0_thread_sees_all_local(self):
        _, _, arc = run_toy(IBS(period=256))
        rec = arc.thread(1).vars["a"]  # cpu 1 -> domain 0
        assert rec.metrics[MetricNames.NUMA_MATCH] > 0
        assert rec.metrics.get(MetricNames.NUMA_MISMATCH, 0.0) == 0.0

    def test_domain_counts_point_at_domain0(self):
        _, _, arc = run_toy(IBS(period=256))
        rec = arc.thread(5).vars["a"]
        n0 = rec.metrics[MetricNames.numa_node(0)]
        assert n0 == rec.metrics[MetricNames.NUMA_MATCH] + rec.metrics[
            MetricNames.NUMA_MISMATCH
        ]
        assert rec.metrics.get(MetricNames.numa_node(2), 0.0) == 0.0


class TestAddressCentric:
    def test_worker_range_matches_partition(self):
        engine, _, arc = run_toy(IBS(period=64))
        rec = arc.thread(5).vars["a"]
        lo, hi = rec.range_for()
        n = 200_000
        exp_lo = rec.base + (5 * n // 8) * 8
        exp_hi = rec.base + (6 * n // 8) * 8
        assert exp_lo <= lo < exp_lo + 8 * 2000  # sampling granularity slack
        assert exp_hi - 8 * 2000 < hi <= exp_hi

    def test_master_covers_whole_variable(self):
        _, _, arc = run_toy(IBS(period=64))
        rec = arc.thread(0).vars["a"]
        lo, hi = rec.range_for()
        assert (hi - lo) / rec.nbytes > 0.95


class TestFirstTouch:
    def test_master_thread_records_first_touches(self):
        _, _, arc = run_toy(IBS(period=512))
        fts = arc.thread(0).first_touches
        assert len(fts) == 1
        ft = fts[0]
        assert ft.var_name == "a"
        # All interior pages trapped in one chunk-level fault batch.
        assert ft.n_pages >= 200_000 * 8 // 4096 - 2
        assert any(f.func == "init_loop" for f in ft.path)

    def test_workers_record_none(self):
        _, _, arc = run_toy(IBS(period=512))
        for tid in range(1, 8):
            assert arc.thread(tid).first_touches == []

    def test_first_touch_in_data_cct(self):
        _, _, arc = run_toy(IBS(period=512))
        nodes = [
            n for n in arc.thread(0).data_cct.root.walk()
            if n.frame == DUMMY_FIRST_TOUCH
        ]
        assert len(nodes) == 1

    def test_protection_disabled(self):
        machine = presets.generic(n_domains=4, cores_per_domain=2)
        profiler = NumaProfiler(IBS(period=512), protect_heap=False)
        ExecutionEngine(machine, ToyProgram(), 8, monitor=profiler).run()
        assert profiler.archive.thread(0).first_touches == []


class TestCodeCentric:
    def test_compute_loop_in_cct(self):
        _, _, arc = run_toy(IBS(period=256))
        cct = arc.thread(3).cct
        nodes = cct.find("compute_loop")
        assert len(nodes) == 1
        assert nodes[0].metrics[MetricNames.SAMPLES] > 0

    def test_instructions_attributed_exactly(self):
        _, _, arc = run_toy(IBS(period=256), n_threads=4)
        prof = arc.thread(2)
        assert prof.cct.total(MetricNames.INSTR) == prof.counters["instructions"]

    def test_data_cct_under_alloc_path(self):
        _, _, arc = run_toy(IBS(period=256))
        data_cct = arc.thread(3).data_cct
        dummy_nodes = [
            n for n in data_cct.root.walk() if n.frame == DUMMY_ACCESS
        ]
        assert dummy_nodes
        # The allocation frame is an ancestor of the dummy.
        anc = dummy_nodes[0]
        funcs = set()
        while anc is not None:
            funcs.add(anc.frame.func)
            anc = anc.parent
        assert "operator new[]" in funcs


class TestCounters:
    def test_sampling_rate_consistency(self):
        _, _, arc = run_toy(IBS(period=1000), n_threads=4)
        for prof in arc.profiles.values():
            expected = prof.counters["instructions"] // 1000
            assert prof.counters["sampled_instructions"] == pytest.approx(
                expected, abs=2
            )

    def test_events_counter_mrk(self):
        _, _, arc = run_toy(MRK(max_rate=1e9), n_threads=4)
        total_events = sum(
            p.counters["events"] for p in arc.profiles.values()
        )
        assert total_events > 0


class TestOverheadCharging:
    def test_soft_ibs_costs_more_than_ibs(self):
        machine_a = presets.generic(n_domains=4, cores_per_domain=2)
        machine_b = presets.generic(n_domains=4, cores_per_domain=2)
        res_ibs = ExecutionEngine(
            machine_a, ToyProgram(), 8, monitor=NumaProfiler(IBS())
        ).run()
        res_soft = ExecutionEngine(
            machine_b, ToyProgram(), 8, monitor=NumaProfiler(SoftIBS())
        ).run()
        assert res_soft.monitor_overhead_cycles > res_ibs.monitor_overhead_cycles
        assert res_soft.wall_cycles > res_ibs.wall_cycles

    def test_footprint_under_paper_bound(self):
        _, _, arc = run_toy(IBS(period=128))
        # Paper: aggregate runtime footprint < 40 MB.
        assert arc.footprint_bytes() < 40 * 1024 * 1024
