"""Blackscholes workload: staggered sections, low lpi, regroup transform."""

import pytest

from repro.analysis import NumaAnalysis, classify_ranges, merge_profiles
from repro.analysis.patterns import AccessPattern
from repro.machine import presets
from repro.optim.policies import NumaTuning
from repro.profiler import NumaProfiler
from repro.runtime import ExecutionEngine
from repro.sampling import IBS
from repro.workloads import Blackscholes
from repro.workloads.blackscholes import SECTIONS

SMALL = dict(n_options=20_000, steps=20)


@pytest.fixture(scope="module")
def profiled():
    machine = presets.magny_cours()
    prof = NumaProfiler(IBS(period=4096))
    engine = ExecutionEngine(machine, Blackscholes(**SMALL), 48, monitor=prof)
    result = engine.run()
    return engine, result, merge_profiles(prof.archive)


@pytest.fixture(scope="module")
def dense_merged():
    """Soft-IBS at a tiny period: dense address capture for pattern tests."""
    from repro.sampling import SoftIBS

    machine = presets.magny_cours()
    prof = NumaProfiler(SoftIBS(period=16))
    engine = ExecutionEngine(
        machine, Blackscholes(n_options=20_000, steps=4), 48, monitor=prof
    )
    engine.run()
    return merge_profiles(prof.archive)


class TestLayout:
    def test_five_sections(self):
        assert len(SECTIONS) == 5

    def test_buffer_holds_five_sections(self, profiled):
        _, _, merged = profiled
        prog_bytes = 5 * SMALL["n_options"] * 8
        assert merged.var("buffer").nbytes == prog_bytes


class TestPattern:
    def test_staggered_overlap(self, dense_merged):
        """The Fig. 8 picture: ascending sub-ranges with large overlaps."""
        merged = dense_merged
        rep = classify_ranges(merged.var("buffer").normalized_ranges())
        assert rep.pattern is AccessPattern.STAGGERED_OVERLAP
        assert rep.mean_overlap > 0.5
        assert 0.6 < rep.mean_coverage < 0.95

    def test_buffer_dominates_remote_latency(self, profiled):
        _, _, merged = profiled
        an = NumaAnalysis(merged)
        assert an.variable_summary("buffer").remote_latency_share > 0.5


class TestVerdict:
    def test_lpi_below_threshold(self, profiled):
        """The tool's headline Blackscholes result."""
        _, _, merged = profiled
        an = NumaAnalysis(merged)
        assert an.program_lpi() < 0.1
        assert an.warrants_optimization() is False


class TestRegroup:
    def test_regrouped_access_is_contiguous_per_thread(self):
        tuning = NumaTuning(regroup={"buffer"}, parallel_init={"buffer", "prices"})
        machine = presets.magny_cours()
        prof = NumaProfiler(IBS(period=2048))
        engine = ExecutionEngine(
            machine, Blackscholes(tuning, **SMALL), 48, monitor=prof
        )
        engine.run()
        merged = merge_profiles(prof.archive)
        rep = classify_ranges(merged.var("buffer").normalized_ranges())
        assert rep.pattern is AccessPattern.BLOCKED
        assert rep.mean_overlap < 0.1

    def test_optimizing_anyway_changes_little(self):
        """Eliminating NUMA traffic barely moves compute-dominated time."""
        base = ExecutionEngine(
            presets.magny_cours(), Blackscholes(**SMALL), 48
        ).run()
        tuning = NumaTuning(
            regroup={"buffer"}, parallel_init={"buffer", "prices"}
        )
        opt = ExecutionEngine(
            presets.magny_cours(), Blackscholes(tuning, **SMALL), 48
        ).run()
        gain = base.wall_seconds / opt.wall_seconds - 1
        assert abs(gain) < 0.02  # paper: < 0.1% at full scale

    def test_regroup_eliminates_remote_traffic(self):
        tuning = NumaTuning(
            regroup={"buffer"}, parallel_init={"buffer", "prices"}
        )
        opt = ExecutionEngine(
            presets.magny_cours(), Blackscholes(tuning, **SMALL), 48
        ).run()
        assert opt.remote_dram_fraction < 0.05
