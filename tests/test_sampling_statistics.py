"""Statistical properties of address sampling.

The paper requires that "memory accesses are uniformly sampled" — these
tests verify the estimators built on that assumption: sampled metric
ratios converge to ground-truth ratios, and eq. (2)'s lpi estimate is
unbiased across sampling rates.
"""

import numpy as np
import pytest

from repro.machine import presets
from repro.machine.cache import LEVEL_DRAM, LEVEL_L1
from repro.runtime.callstack import SourceLoc
from repro.runtime.chunks import AccessChunk
from repro.runtime.heap import HeapAllocator
from repro.sampling import IBS, SoftIBS


@pytest.fixture
def big_chunk():
    machine = presets.generic()
    heap = HeapAllocator(machine)
    var = heap.malloc(8 * 200_000, "v", (SourceLoc("main"),))
    n = 200_000
    return AccessChunk(
        var, var.base + np.arange(n) * 8, n * 5, SourceLoc("k")
    )


def make_inputs(chunk, remote_fraction=1 / 3, seed=11):
    """Ground truth with randomized (non-periodic) structure.

    Perfectly modular patterns would alias with the deterministic
    sampling grid — a pathology real access streams don't exhibit.
    """
    rng = np.random.default_rng(seed)
    n = chunk.n_accesses
    levels = np.full(n, LEVEL_L1, dtype=np.uint8)
    levels[rng.random(n) < 1 / 8] = LEVEL_DRAM
    targets = (rng.random(n) < remote_fraction).astype(np.int64)
    lat = np.where(levels == LEVEL_DRAM, 250.0, 4.0)
    return levels, targets, lat


class TestUniformity:
    def test_ibs_remote_fraction_unbiased(self, big_chunk):
        """Sampled remote fraction converges to the ground truth 1/3."""
        machine = presets.generic()
        mech = IBS(period=64)
        mech.configure(machine)
        levels, targets, lat = make_inputs(big_chunk)
        batch = mech.select(0, big_chunk, levels, targets, lat)
        sampled_remote = np.count_nonzero(targets[batch.indices] == 1)
        frac = sampled_remote / batch.n_samples
        assert frac == pytest.approx(1 / 3, abs=0.03)

    def test_ibs_samples_spread_over_chunk(self, big_chunk):
        """No positional bias: sample quartiles hold ~25% each."""
        machine = presets.generic()
        mech = IBS(period=64)
        mech.configure(machine)
        levels, targets, lat = make_inputs(big_chunk)
        batch = mech.select(0, big_chunk, levels, targets, lat)
        n = big_chunk.n_accesses
        hist, _ = np.histogram(batch.indices, bins=4, range=(0, n))
        assert hist.min() > 0.2 * batch.n_samples
        assert hist.max() < 0.3 * batch.n_samples

    def test_soft_ibs_exact_rate(self, big_chunk):
        machine = presets.generic()
        mech = SoftIBS(period=1000)
        mech.configure(machine)
        levels, targets, lat = make_inputs(big_chunk)
        batch = mech.select(0, big_chunk, levels, targets, lat)
        assert batch.n_samples == big_chunk.n_accesses // 1000

    def test_memory_sample_rate_tracks_access_density(self, big_chunk):
        """IBS memory samples ~ instruction samples x (accesses/instr)."""
        machine = presets.generic()
        mech = IBS(period=128)
        mech.configure(machine)
        levels, targets, lat = make_inputs(big_chunk)
        batch = mech.select(0, big_chunk, levels, targets, lat)
        expected = batch.n_sampled_instructions * (
            big_chunk.n_accesses / big_chunk.n_instructions
        )
        assert batch.n_samples == pytest.approx(expected, rel=0.1)


class TestLpiUnbiasedness:
    def test_eq2_estimate_stable_across_rates(self, big_chunk):
        """The eq. (2) ratio is invariant to the sampling period."""
        machine = presets.generic()
        levels, targets, lat = make_inputs(big_chunk)

        def lpi_at(period):
            mech = IBS(period=period)
            mech.configure(machine)
            batch = mech.select(0, big_chunk, levels, targets, lat)
            remote = targets[batch.indices] == 1
            l_remote = lat[batch.indices][remote].sum()
            return l_remote / batch.n_sampled_instructions

        dense, sparse = lpi_at(32), lpi_at(256)
        # Ground truth: remote latency / instructions over the full chunk.
        truth = lat[targets == 1].sum() / big_chunk.n_instructions
        # Dense sampling (~6000 memory samples) pins the estimate down;
        # at period 256 only ~35 remote-DRAM events are sampled, so the
        # tolerance follows the ~1/sqrt(n) statistics.
        assert dense == pytest.approx(truth, rel=0.15)
        assert sparse == pytest.approx(truth, rel=0.6)
