"""Profile containers: VarRecord ranges/bins, ThreadProfile, archive."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.machine import presets
from repro.profiler.profile_data import (
    FirstTouchRecord,
    ProfileArchive,
    ThreadProfile,
    VarRecord,
)
from repro.runtime.callstack import SourceLoc
from repro.runtime.heap import HeapAllocator

PATH_A = (SourceLoc("main"), SourceLoc("kernel_a"))
PATH_B = (SourceLoc("main"), SourceLoc("kernel_b"))


@pytest.fixture
def var():
    machine = presets.generic()
    heap = HeapAllocator(machine)
    return heap.malloc(8 * 40_960, "v", (SourceLoc("main"),))  # 80 pages


class TestVarRecord:
    def test_binned_when_large(self, var):
        rec = VarRecord(var)
        assert rec.n_bins == 5

    def test_record_samples_tightens_ranges(self, var):
        rec = VarRecord(var)
        rec.record_samples(PATH_A, var.base + np.array([80, 160, 400]))
        lo, hi = rec.range_for(PATH_A)
        assert (lo, hi) == (var.base + 80, var.base + 400)

    def test_ranges_per_context(self, var):
        rec = VarRecord(var)
        rec.record_samples(PATH_A, var.base + np.array([0, 100]))
        rec.record_samples(PATH_B, var.base + np.array([5000, 9000]))
        assert rec.range_for(PATH_A) == (var.base, var.base + 100)
        assert rec.range_for(PATH_B) == (var.base + 5000, var.base + 9000)

    def test_range_across_contexts_is_min_max(self, var):
        rec = VarRecord(var)
        rec.record_samples(PATH_A, var.base + np.array([100]))
        rec.record_samples(PATH_B, var.base + np.array([9000]))
        assert rec.range_for() == (var.base + 100, var.base + 9000)

    def test_range_for_unknown_context(self, var):
        rec = VarRecord(var)
        assert rec.range_for(PATH_A) is None
        assert rec.range_for() is None

    def test_bin_indices_returned(self, var):
        rec = VarRecord(var)
        last = var.nbytes - 8
        bins = rec.record_samples(PATH_A, var.base + np.array([0, last]))
        np.testing.assert_array_equal(bins, [0, rec.n_bins - 1])

    def test_bin_ranges_tracked(self, var):
        rec = VarRecord(var)
        rec.record_samples(PATH_A, var.base + np.array([0, var.nbytes - 8]))
        arr = rec.ranges[PATH_A]
        # Row 0 = whole var; row 1 = bin 0; last row = last bin.
        assert arr[1, 0] == var.base
        assert arr[-1, 1] == var.base + var.nbytes - 8
        # Untouched middle bin keeps [inf, -inf].
        assert not np.isfinite(arr[3, 0])


class TestThreadProfile:
    def test_var_record_created_once(self, var):
        prof = ThreadProfile(tid=0, cpu=0, domain=0)
        a = prof.var_record(var)
        b = prof.var_record(var)
        assert a is b

    def test_footprint_grows_with_data(self, var):
        prof = ThreadProfile(tid=0, cpu=0, domain=0)
        empty = prof.footprint_bytes()
        rec = prof.var_record(var)
        rec.record_samples(PATH_A, var.base + np.array([0]))
        prof.first_touches.append(
            FirstTouchRecord("v", 0, 0, 0, np.arange(10), PATH_A)
        )
        assert prof.footprint_bytes() > empty


class TestArchive:
    def test_thread_access(self, var):
        arc = ProfileArchive("p", "m", 4, "IBS", None)
        arc.profiles[3] = ThreadProfile(tid=3, cpu=3, domain=1)
        assert arc.thread(3).tid == 3
        assert arc.n_threads == 1

    def test_all_var_names(self, var):
        arc = ProfileArchive("p", "m", 4, "IBS", None)
        p0 = ThreadProfile(tid=0, cpu=0, domain=0)
        p1 = ThreadProfile(tid=1, cpu=1, domain=0)
        p0.var_record(var)
        arc.profiles = {0: p0, 1: p1}
        assert arc.all_var_names() == ["v"]

    def test_first_touch_record(self):
        ft = FirstTouchRecord("v", 1, 2, 0, np.array([5, 6, 7]), PATH_A)
        assert ft.n_pages == 3


@given(
    offsets=st.lists(
        st.integers(min_value=0, max_value=8 * 40_960 - 1),
        min_size=1, max_size=100,
    )
)
@settings(max_examples=40, deadline=None)
def test_range_invariants(offsets, request):
    """Ranges always bracket every recorded sample; bin rows stay inside
    the whole-variable row."""
    machine = presets.generic()
    heap = HeapAllocator(machine)
    var = heap.malloc(8 * 40_960, "v", (SourceLoc("main"),))
    rec = VarRecord(var)
    addrs = var.base + np.array(offsets, dtype=np.int64)
    rec.record_samples(PATH_A, addrs)
    lo, hi = rec.range_for(PATH_A)
    assert lo == addrs.min() and hi == addrs.max()
    arr = rec.ranges[PATH_A]
    finite = np.isfinite(arr[1:, 0])
    assert np.all(arr[1:, 0][finite] >= lo)
    assert np.all(arr[1:, 1][finite] <= hi)
