"""Exception hierarchy: everything catchable via NumaProfError."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.TopologyError,
    errors.AllocationError,
    errors.InvalidAddressError,
    errors.ProtectionError,
    errors.BindingError,
    errors.MechanismError,
    errors.ProgramError,
    errors.ProfileError,
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_subclass_of_base(exc):
    assert issubclass(exc, errors.NumaProfError)
    with pytest.raises(errors.NumaProfError):
        raise exc("boom")


def test_base_is_exception():
    assert issubclass(errors.NumaProfError, Exception)


def test_distinct_types():
    assert len(set(ALL_ERRORS)) == len(ALL_ERRORS)
