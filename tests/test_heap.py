"""Heap/static/stack allocators with allocation call paths."""

import pytest

from repro.errors import AllocationError
from repro.machine import presets
from repro.machine.pagetable import PlacementPolicy
from repro.runtime.callstack import SourceLoc
from repro.runtime.heap import (
    HEAP_BASE,
    STACK_ARENA,
    STACK_BASE,
    STATIC_BASE,
    HeapAllocator,
    VariableKind,
)


@pytest.fixture
def heap():
    return HeapAllocator(presets.generic(n_domains=4, cores_per_domain=2))


PATH = (SourceLoc("main"), SourceLoc("alloc_site"), SourceLoc("malloc"))


class TestMalloc:
    def test_basic_allocation(self, heap):
        v = heap.malloc(1000, "a", PATH)
        assert v.kind is VariableKind.HEAP
        assert v.nbytes == 1000
        assert v.base >= HEAP_BASE
        assert v.alloc_path == PATH

    def test_variables_page_disjoint(self, heap):
        a = heap.malloc(100, "a", PATH)
        b = heap.malloc(100, "b", PATH)
        assert b.base // 4096 > (a.end - 1) // 4096

    def test_duplicate_name_rejected(self, heap):
        heap.malloc(100, "a", PATH)
        with pytest.raises(AllocationError):
            heap.malloc(100, "a", PATH)

    def test_nonpositive_size_rejected(self, heap):
        with pytest.raises(AllocationError):
            heap.malloc(0, "a", PATH)

    def test_placement_policy_honoured(self, heap):
        v = heap.malloc(
            8 * 4096, "a", PATH,
            policy=PlacementPolicy.INTERLEAVE, domains=[0, 1],
        )
        assert v.segment.policy is PlacementPolicy.INTERLEAVE
        assert set(v.segment.domains.tolist()) == {0, 1}

    def test_element_helpers(self, heap):
        v = heap.malloc(80, "a", PATH)
        assert v.n_elems() == 10
        assert v.addr_of_elem(3) == v.base + 24


class TestStaticAlloc:
    def test_static_region(self, heap):
        v = heap.static_alloc(4096, "g")
        assert v.kind is VariableKind.STATIC
        assert STATIC_BASE <= v.base < HEAP_BASE
        assert v.alloc_path[0].func == "<static data>"


class TestStackAlloc:
    def test_per_thread_arenas(self, heap):
        a = heap.stack_alloc(4096, "s0", tid=0)
        b = heap.stack_alloc(4096, "s3", tid=3)
        assert a.kind is VariableKind.STACK
        assert a.base >= STACK_BASE
        assert b.base - STACK_BASE >= 3 * STACK_ARENA
        assert a.owner_tid == 0 and b.owner_tid == 3

    def test_arena_exhaustion(self, heap):
        with pytest.raises(AllocationError):
            heap.stack_alloc(STACK_ARENA + 4096, "huge", tid=0)

    def test_stack_placement_policy(self, heap):
        v = heap.stack_alloc(
            8 * 4096, "s", tid=0,
            policy=PlacementPolicy.BLOCKWISE, domains=[0, 1, 2, 3],
        )
        assert v.segment.policy is PlacementPolicy.BLOCKWISE


class TestFree:
    def test_free_unmaps(self, heap):
        v = heap.malloc(100, "a", PATH)
        heap.free(v)
        assert "a" not in heap.variables
        # Name can be reused after free.
        heap.malloc(100, "a", PATH)

    def test_double_free_rejected(self, heap):
        v = heap.malloc(100, "a", PATH)
        heap.free(v)
        with pytest.raises(AllocationError):
            heap.free(v)


class TestMonitorHooks:
    def test_alloc_and_free_callbacks(self, heap):
        events = []

        class Spy:
            def on_alloc(self, var):
                events.append(("alloc", var.name))

            def on_free(self, var):
                events.append(("free", var.name))

        heap.add_monitor(Spy())
        v = heap.malloc(100, "a", PATH)
        heap.free(v)
        assert events == [("alloc", "a"), ("free", "a")]

    def test_monitor_without_hooks_tolerated(self, heap):
        heap.add_monitor(object())
        heap.malloc(100, "a", PATH)  # must not raise
