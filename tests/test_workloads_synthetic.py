"""Synthetic workloads and the shared workload base machinery."""

import numpy as np

from repro.machine import presets
from repro.machine.pagetable import PlacementPolicy, UNBOUND
from repro.optim.policies import NumaTuning, PlacementSpec
from repro.runtime import ExecutionEngine
from repro.workloads import CentralHotspot, PartitionedSweep
from repro.workloads.base import WorkloadBase


def run(program, n_threads=8, machine=None):
    machine = machine or presets.generic(n_domains=4, cores_per_domain=2)
    engine = ExecutionEngine(machine, program, n_threads)
    return machine, engine.run()


class TestPartitionedSweep:
    def test_baseline_centralizes(self):
        machine, res = run(PartitionedSweep(n_elems=100_000, steps=2))
        counts = machine.page_table.domain_page_counts()
        assert counts[0] == counts.sum()

    def test_blockwise_tuning_distributes(self):
        tuning = NumaTuning(placement={
            "data": PlacementSpec(PlacementPolicy.BLOCKWISE, (0, 1, 2, 3))
        })
        machine, res = run(PartitionedSweep(tuning, n_elems=100_000, steps=2))
        counts = machine.page_table.domain_page_counts()
        assert np.all(counts > 0)

    def test_parallel_init_colocates(self):
        tuning = NumaTuning(parallel_init={"data"})
        machine, res = run(
            PartitionedSweep(tuning, n_elems=400_000, steps=3)
        )
        assert res.remote_dram_fraction < 0.05

    def test_blockwise_faster_than_baseline(self):
        base_m, base = run(PartitionedSweep(n_elems=400_000, steps=4))
        tuning = NumaTuning(parallel_init={"data"})
        opt_m, opt = run(PartitionedSweep(tuning, n_elems=400_000, steps=4))
        assert opt.wall_seconds < base.wall_seconds


class TestCentralHotspot:
    def test_every_thread_reads_everything(self):
        machine, res = run(CentralHotspot(n_elems=100_000, steps=2))
        # Total accesses = threads x elems x steps (+ init).
        assert res.total_accesses >= 8 * 100_000 * 2

    def test_interleave_balances_requests(self):
        tuning = NumaTuning(placement={
            "table": PlacementSpec(PlacementPolicy.INTERLEAVE, (0, 1, 2, 3))
        })
        machine, res = run(CentralHotspot(tuning, n_elems=200_000, steps=2))
        req = res.domain_dram_requests
        assert req.max() / max(req.min(), 1) < 1.5


class TestInitMachinery:
    def test_init_touches_every_page(self):
        machine, _ = run(PartitionedSweep(n_elems=100_000, steps=1))
        seg = machine.page_table.segments[0]
        assert np.all(seg.domains != UNBOUND)

    def test_parallel_init_region_named(self):
        tuning = NumaTuning(parallel_init={"data"})
        prog = PartitionedSweep(tuning, n_elems=50_000, steps=1)
        machine = presets.generic(n_domains=4, cores_per_domain=2)
        engine = ExecutionEngine(machine, prog, 4)
        res = engine.run()
        assert any(k.endswith("._omp") and "init" in k
                   for k in res.region_wall_cycles)

    def test_mixed_serial_and_parallel_init(self):
        """Partial parallel init: some variables serial, some parallel."""

        class TwoVars(WorkloadBase):
            name = "two"
            source_file = "two.c"

            def setup(self, ctx):
                from repro.runtime.callstack import SourceLoc

                self._alloc(ctx, "s", 8 * 50_000, (SourceLoc("main"),))
                self._alloc(ctx, "p", 8 * 50_000, (SourceLoc("main"),))

            def regions(self, ctx):
                return self.make_init_regions(ctx, ["s", "p"])

        tuning = NumaTuning(parallel_init={"p"})
        machine = presets.generic(n_domains=4, cores_per_domain=2)
        ExecutionEngine(machine, TwoVars(tuning), 8).run()
        segs = {s.label: s for s in machine.page_table.segments}
        assert set(segs["s"].domains.tolist()) == {0}
        assert len(set(segs["p"].domains.tolist())) == 4


class TestJitteredIndices:
    def test_stay_in_bounds(self):
        rng = np.random.default_rng(0)
        idx = WorkloadBase.jittered_block_indices(rng, 0, 100, 100, jitter=50)
        assert idx.min() >= 0 and idx.max() < 100

    def test_blocked_locality_preserved(self):
        rng = np.random.default_rng(0)
        idx = WorkloadBase.jittered_block_indices(
            rng, 1000, 2000, 10_000, jitter=16
        )
        assert idx.min() >= 984 and idx.max() < 2016

    def test_no_jitter_is_identity(self):
        rng = np.random.default_rng(0)
        idx = WorkloadBase.jittered_block_indices(rng, 5, 10, 100, jitter=0)
        np.testing.assert_array_equal(idx, np.arange(5, 10))
