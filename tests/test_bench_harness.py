"""The shared benchmark harness (repro.bench)."""

import json

import pytest

from repro.bench import fmt_table, record_experiment, run_workload
from repro.bench.harness import pct
from repro.machine import presets
from repro.runtime.thread import BindingPolicy
from repro.sampling import IBS
from repro.workloads import PartitionedSweep


class TestRunWorkload:
    def test_plain_run(self):
        bundle = run_workload(
            lambda: presets.generic(n_domains=2, cores_per_domain=2),
            PartitionedSweep(n_elems=50_000, steps=1),
            4,
        )
        assert bundle.result.wall_seconds > 0
        assert bundle.profiler is None
        with pytest.raises(ValueError):
            bundle.analysis

    def test_monitored_run_exposes_analysis(self):
        bundle = run_workload(
            lambda: presets.generic(n_domains=2, cores_per_domain=2),
            PartitionedSweep(n_elems=50_000, steps=2),
            4,
            IBS(period=256),
        )
        assert bundle.analysis.program_lpi() is not None
        assert set(bundle.thread_domains) == {0, 1, 2, 3}

    def test_binding_forwarded(self):
        bundle = run_workload(
            lambda: presets.generic(n_domains=2, cores_per_domain=2),
            PartitionedSweep(n_elems=50_000, steps=1),
            4,
            binding=BindingPolicy.SCATTER,
        )
        assert [t.domain for t in bundle.engine.threads] == [0, 1, 0, 1]


class TestFormatting:
    def test_fmt_table_alignment(self):
        text = fmt_table(["a", "bb"], [["x", 1], ["yyy", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "---" in lines[2]
        assert len(lines) == 5

    def test_fmt_table_empty_rows(self):
        text = fmt_table(["col"], [])
        assert "col" in text

    def test_pct(self):
        assert pct(0.251) == "+25.1%"
        assert pct(-0.1) == "-10.0%"


class TestRecording:
    def test_record_experiment_writes_json_and_text(self, tmp_path, monkeypatch):
        import repro.bench.harness as harness

        monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path)
        record_experiment("exp1", {"x": 1.5}, "hello")
        data = json.loads((tmp_path / "exp1.json").read_text())
        assert data == {"x": 1.5}
        assert (tmp_path / "exp1.txt").read_text().strip() == "hello"

    def test_record_without_text(self, tmp_path, monkeypatch):
        import repro.bench.harness as harness

        monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path)
        record_experiment("exp2", {"y": [1, 2]})
        assert (tmp_path / "exp2.json").exists()
        assert not (tmp_path / "exp2.txt").exists()
