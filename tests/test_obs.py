"""Unit tests for the repro.obs telemetry layer (tracer + exporters)."""

from __future__ import annotations

import json
import logging

import pytest

from repro import obs
from repro.obs import (
    NOOP_SPAN,
    CountingTracer,
    Tracer,
    chrome_trace,
    configure_logging,
    phase_breakdown,
    summary_table,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)


@pytest.fixture
def tracer() -> Tracer:
    tr = Tracer()
    tr.enable()
    return tr


class TestTracerDisabled:
    def test_disabled_by_default(self):
        assert not Tracer().enabled
        assert not obs.get_tracer().enabled

    def test_disabled_span_is_shared_noop(self):
        tr = Tracer()
        assert tr.span("x", "engine") is NOOP_SPAN
        assert tr.span("y", "profiler") is NOOP_SPAN

    def test_disabled_calls_record_nothing(self):
        tr = Tracer()
        tr.begin("a")
        tr.count("c", 5)
        tr.gauge("g", 1.0)
        tr.pair("p", "engine", 0, 0, 10)
        tr.instant("i")
        tr.end()
        assert tr.events == []
        assert tr.counters == {}
        assert tr.gauges == {}

    def test_global_swap(self):
        counting = CountingTracer()
        old = obs.set_tracer(counting)
        try:
            assert obs.TRACER is counting
        finally:
            obs.set_tracer(old)
        assert obs.TRACER is old


class TestTracerSpans:
    def test_nesting_and_self_time(self, tracer):
        with tracer.span("outer", "engine"):
            with tracer.span("inner", "sampling"):
                pass
        outer = ("engine", "outer")
        inner = ("sampling", "inner")
        assert tracer.calls[outer] == 1
        assert tracer.calls[inner] == 1
        # Self time excludes the child: outer self + inner total = outer
        # total (the partition property phase breakdowns rely on).
        assert tracer.self_ns[outer] + tracer.total_ns[inner] == pytest.approx(
            tracer.total_ns[outer]
        )
        assert tracer.self_ns[inner] == tracer.total_ns[inner]

    def test_events_are_balanced(self, tracer):
        with tracer.span("a", "engine"):
            with tracer.span("b", "engine"):
                pass
        phs = [ev[0] for ev in tracer.events]
        assert phs == ["B", "B", "E", "E"]

    def test_counters_and_gauges(self, tracer):
        tracer.count("n", 2)
        tracer.count("n", 3)
        tracer.gauge("g", 7)
        tracer.gauge("g", 9)
        assert tracer.counters["n"] == 5
        assert tracer.gauges["g"] == 9

    def test_phase_breakdown_partitions_root(self, tracer):
        with tracer.span("root", "harness"):
            with tracer.span("child", "engine"):
                pass
            with tracer.span("child2", "profiler"):
                pass
        pb = phase_breakdown(tracer)
        assert set(pb["by_category"]) == {"harness", "engine", "profiler"}
        root_total_s = tracer.total_ns[("harness", "root")] / 1e9
        assert pb["total_self_s"] == pytest.approx(root_total_s)

    def test_clear_resets_everything(self, tracer):
        with tracer.span("a"):
            tracer.count("c")
        tracer.clear()
        assert tracer.events == []
        assert tracer.self_ns == {}
        assert tracer.counters == {}


class TestCountingTracer:
    def test_counts_touch_points_without_storing(self):
        tr = CountingTracer()
        assert tr.enabled
        tr.begin("a")
        tr.end()
        with tr.span("b", "engine"):
            pass
        tr.count("c")
        tr.gauge("g", 1)
        tr.pair("p", "engine", 0, 0, 1)
        tr.instant("i")
        assert tr.n_calls == 8
        assert tr.events == []


class TestChromeExport:
    def test_valid_and_loadable(self, tracer, tmp_path):
        with tracer.span("run", "engine"):
            with tracer.span("step", "engine"):
                pass
        t0 = tracer.now_ns()
        tracer.pair("iter", "engine", 3, t0, t0 + 100)
        path = write_chrome_trace(tracer, tmp_path / "t.json")
        assert validate_chrome_trace(path) == []
        doc = json.loads(path.read_text())
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "M"}
        assert names == {"thread_name"}
        tids = {e["tid"] for e in doc["traceEvents"]}
        assert 0 in tids  # harness track
        assert 4 in tids  # simulated thread 3 -> tid 4

    def test_pair_events_sorted_into_monotonic_order(self, tracer):
        # pair() appends pre-timed events late; the exporter re-sorts.
        t0 = tracer.now_ns()
        with tracer.span("outer", "engine"):
            pass
        tracer.pair("mirror", "engine", 0, t0, tracer.now_ns())
        assert validate_chrome_trace(chrome_trace(tracer)) == []

    def test_counters_in_other_data(self, tracer):
        tracer.count("k", 3)
        with tracer.span("s"):
            pass
        doc = chrome_trace(tracer)
        assert doc["otherData"]["counters"] == {"k": 3}


class TestValidator:
    def test_rejects_non_trace(self):
        assert validate_chrome_trace({"nope": 1})

    def test_rejects_decreasing_ts(self):
        doc = {"traceEvents": [
            {"name": "a", "ph": "B", "pid": 1, "tid": 0, "ts": 5.0},
            {"name": "a", "ph": "E", "pid": 1, "tid": 0, "ts": 4.0},
        ]}
        assert any("decreases" in p for p in validate_chrome_trace(doc))

    def test_rejects_unmatched_begin(self):
        doc = {"traceEvents": [
            {"name": "a", "ph": "B", "pid": 1, "tid": 0, "ts": 1.0},
        ]}
        assert any("open" in p for p in validate_chrome_trace(doc))

    def test_rejects_mismatched_end_name(self):
        doc = {"traceEvents": [
            {"name": "a", "ph": "B", "pid": 1, "tid": 0, "ts": 1.0},
            {"name": "b", "ph": "E", "pid": 1, "tid": 0, "ts": 2.0},
        ]}
        assert any("closes open span" in p for p in validate_chrome_trace(doc))

    def test_rejects_unreadable_file(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert any("unreadable" in p for p in validate_chrome_trace(bad))


class TestGaugeMerge:
    """``Tracer.absorb`` gauge semantics: per-gauge merge policies, not
    last-write-wins (which silently depended on shard arrival order)."""

    def _state(self, gauges: dict) -> dict:
        tr = Tracer()
        tr.enable()
        for key, value in gauges.items():
            tr.gauge(key, value)
        return tr.export_state()

    def test_sum_policy_for_sharded_row_counts(self, tracer):
        assert obs.GAUGE_MERGE["profiler.code_rows"] == "sum"
        tracer.gauge("profiler.code_rows", 10)
        tracer.absorb(self._state({"profiler.code_rows": 7}), "w0")
        assert tracer.gauges["profiler.code_rows"] == 17

    def test_max_policy_for_epsilon(self, tracer):
        assert obs.GAUGE_MERGE["engine.phase.epsilon"] == "max"
        tracer.gauge("engine.phase.epsilon", 0.5)
        tracer.absorb(self._state({"engine.phase.epsilon": 0.2}), "w0")
        assert tracer.gauges["engine.phase.epsilon"] == 0.5
        tracer.absorb(self._state({"engine.phase.epsilon": 0.9}), "w1")
        assert tracer.gauges["engine.phase.epsilon"] == 0.9

    def test_unknown_gauges_default_to_max(self, tracer):
        assert obs.DEFAULT_GAUGE_MERGE == "max"
        tracer.gauge("custom.gauge", 5)
        tracer.absorb(self._state({"custom.gauge": 3}), "w0")
        assert tracer.gauges["custom.gauge"] == 5

    def test_absorb_order_independent(self):
        """Regression: with last-write-wins the merged value depended on
        shard arrival order; max/sum policies are commutative."""
        states = [
            self._state({"engine.phase.epsilon": e, "profiler.var_rows": r})
            for e, r in ((0.1, 3), (0.7, 5), (0.4, 2))
        ]

        def merge(order):
            tr = Tracer()
            tr.enable()
            for i in order:
                tr.absorb(states[i], f"w{i}")
            return dict(tr.gauges)

        assert merge([0, 1, 2]) == merge([2, 1, 0]) == merge([1, 0, 2])
        assert merge([0, 1, 2]) == {
            "engine.phase.epsilon": 0.7, "profiler.var_rows": 10,
        }

    def test_absent_key_copies_value(self, tracer):
        tracer.absorb(self._state({"profiler.bin_rows": 4}), "w0")
        assert tracer.gauges["profiler.bin_rows"] == 4


class TestJsonl:
    def test_round_trips_events_counters_gauges(self, tracer, tmp_path):
        with tracer.span("s", "engine", note=1):
            pass
        tracer.count("c", 2)
        tracer.gauge("g", 3)
        path = write_jsonl(tracer, tmp_path / "t.jsonl")
        recs = [json.loads(line) for line in path.read_text().splitlines()]
        types = [r["type"] for r in recs]
        assert types == ["event", "event", "counter", "gauge"]
        assert recs[0]["args"] == {"note": 1}
        assert recs[2] == {"type": "counter", "name": "c", "value": 2}

    def test_every_line_parses_and_sections_are_ordered(self, tracer, tmp_path):
        with tracer.span("outer", "engine"):
            with tracer.span("inner", "sampling"):
                pass
        tracer.count("c1", 1)
        tracer.count("c2", 2)
        tracer.gauge("g1", 3)
        tracer.gauge("g2", 4)
        path = write_jsonl(tracer, tmp_path / "t.jsonl")
        recs = [json.loads(line) for line in path.read_text().splitlines()]
        types = [r["type"] for r in recs]
        # The stream contract: all events, then counters, then gauges.
        first_counter = types.index("counter")
        first_gauge = types.index("gauge")
        assert all(t == "event" for t in types[:first_counter])
        assert all(t == "counter" for t in types[first_counter:first_gauge])
        assert all(t == "gauge" for t in types[first_gauge:])

    def test_absorbed_tracer_exports_valid_jsonl(self, tracer, tmp_path):
        worker = Tracer()
        worker.enable()
        with worker.span("shard.round", "shard"):
            pass
        worker.count("engine.chunks", 9)
        worker.gauge("profiler.code_rows", 2)
        with tracer.span("parent.round", "harness"):
            pass
        tracer.absorb(worker.export_state(), "w0")
        path = write_jsonl(tracer, tmp_path / "t.jsonl")
        recs = [json.loads(line) for line in path.read_text().splitlines()]
        types = [r["type"] for r in recs]
        assert types == ["event"] * 4 + ["counter", "gauge"]
        # The worker's events landed on the remapped track.
        tracks = {r.get("track") for r in recs if r["type"] == "event"}
        assert "w0" in tracks


class TestSummaryTable:
    def test_mentions_spans_counters_gauges(self, tracer):
        with tracer.span("engine.run", "engine"):
            pass
        tracer.count("engine.steps", 4)
        tracer.gauge("profiler.code_rows", 7)
        text = summary_table(tracer)
        assert "engine.run" in text
        assert "engine.steps" in text
        assert "profiler.code_rows" in text


class TestLogging:
    def test_levels(self):
        configure_logging(verbosity=0)
        assert obs.logger.level == logging.WARNING
        configure_logging(verbosity=1)
        assert obs.logger.level == logging.INFO
        configure_logging(verbosity=2)
        assert obs.logger.level == logging.DEBUG
        configure_logging(quiet=True)
        assert obs.logger.level == logging.ERROR

    def test_idempotent_handlers(self):
        configure_logging(verbosity=0)
        configure_logging(verbosity=0)
        assert len(obs.logger.handlers) == 1

    def test_child_logger_namespaced(self):
        assert obs.get_logger("engine").name == "repro.engine"
