"""Time-varying NUMA traces (paper future work #3) and monitor composition."""

import numpy as np
import pytest

from repro.machine import presets
from repro.profiler import CompositeMonitor, NumaProfiler, TimelineRecorder
from repro.profiler.metrics import MetricNames
from repro.runtime import ExecutionEngine
from repro.sampling import IBS

from tests.conftest import ToyProgram


@pytest.fixture
def recorded():
    machine = presets.generic(n_domains=4, cores_per_domain=2)
    timeline = TimelineRecorder()
    profiler = NumaProfiler(IBS(period=512))
    engine = ExecutionEngine(
        machine, ToyProgram(steps=4), 8,
        monitor=CompositeMonitor(profiler, timeline),
    )
    result = engine.run()
    return timeline, profiler, result


class TestTimeline:
    def test_buckets_per_region_iteration(self, recorded):
        timeline, _, _ = recorded
        assert ("init", 0) in timeline.buckets
        compute = timeline.series("compute._omp")
        assert [b.iteration for b in compute] == [0, 1, 2, 3]

    def test_init_is_all_local(self, recorded):
        timeline, _, _ = recorded
        init = timeline.buckets[("init", 0)]
        assert init.remote_fraction() == 0.0

    def test_compute_iterations_are_remote(self, recorded):
        timeline, _, _ = recorded
        series = timeline.remote_fraction_series("compute._omp")
        # 6 of 8 threads access remotely in every timestep.
        assert np.all(series > 0.5)

    def test_exact_access_conservation(self, recorded):
        """Timeline counts the full access stream, not samples."""
        timeline, _, result = recorded
        counted = sum(
            b.metrics[MetricNames.NUMA_MATCH]
            + b.metrics[MetricNames.NUMA_MISMATCH]
            for b in timeline.buckets.values()
        )
        assert counted == result.total_accesses

    def test_dram_concentrated_in_first_compute_step(self, recorded):
        """Compulsory misses land in iteration 0; later steps hit cache."""
        timeline, _, _ = recorded
        compute = timeline.series("compute._omp")
        assert compute[0].metrics["DRAM"] > 5 * compute[1].metrics["DRAM"]

    def test_render(self, recorded):
        timeline, _, _ = recorded
        text = timeline.render("compute._omp", width=20)
        assert "it   0" in text and "%" in text
        assert text.count("|") == 2 * 4  # two bars per iteration line

    def test_unknown_region_empty(self, recorded):
        timeline, _, _ = recorded
        assert timeline.series("ghost") == []
        assert timeline.remote_fraction_series("ghost").size == 0


class TestCompositeMonitor:
    def test_profiler_still_collects(self, recorded):
        _, profiler, _ = recorded
        merged_samples = sum(
            p.counters["samples"] for p in profiler.archive.profiles.values()
        )
        assert merged_samples > 0

    def test_costs_sum(self):
        from repro.runtime.engine import Monitor

        class Cost(Monitor):
            def __init__(self, c):
                self.c = c

            def on_chunk(self, *a):
                return self.c

        machine = presets.generic(n_domains=4, cores_per_domain=2)
        composite = CompositeMonitor(Cost(10.0), Cost(5.0))
        res = ExecutionEngine(
            machine, ToyProgram(steps=1), 4, monitor=composite
        ).run()
        # Each chunk charged 15 cycles of combined monitoring cost.
        n_chunks = 1 + 4  # serial init + one compute chunk per thread
        assert res.monitor_overhead_cycles == pytest.approx(15.0 * n_chunks)

    def test_first_touch_fans_out(self):
        events = []

        from repro.runtime.engine import Monitor

        class Spy(Monitor):
            def __init__(self, tag):
                self.tag = tag

            def on_first_touch(self, tid, cpu, var, pages, path):
                events.append(self.tag)
                return 0.0

        machine = presets.generic(n_domains=4, cores_per_domain=2)
        profiler = NumaProfiler(IBS(period=512))  # protects heap pages
        composite = CompositeMonitor(profiler, Spy("a"), Spy("b"))
        ExecutionEngine(
            machine, ToyProgram(steps=1), 4, monitor=composite
        ).run()
        assert "a" in events and "b" in events
