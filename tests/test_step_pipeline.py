"""Tests for the hybrid step pipeline and its accounting invariants.

Covers the batched/per-chunk/summary execution paths' exact equivalence,
engine vs. profiler access-counter agreement, serial-region busy/wall
accounting, protection traps on static and stack variables, and the
golden per-bin attribution test proving samples land in their own bins
(not smeared proportionally across the variable).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine import presets
from repro.machine.pagetable import PlacementPolicy
from repro.profiler import NumaProfiler
from repro.profiler.metrics import MetricNames
from repro.runtime import ExecutionEngine
from repro.runtime.callstack import SourceLoc
from repro.runtime.chunks import compute_chunk, sweep_chunk
from repro.runtime.program import Region, RegionKind
from repro.sampling import IBS, SoftIBS

from tests.conftest import ToyProgram


def run_toy(threshold, monitor=None, n_elems=40_000, steps=2):
    """Run the toy program with a forced batching threshold."""
    machine = presets.generic(n_domains=4, cores_per_domain=2)
    engine = ExecutionEngine(
        machine, ToyProgram(n_elems, steps=steps), n_threads=8, monitor=monitor
    )
    engine.BATCH_MEAN_ACCESSES = threshold
    return engine.run()


class TestPipelineParity:
    """The dispatch threshold is a pure performance knob: every path must
    produce identical results (see ``ExecutionEngine.BATCH_MEAN_ACCESSES``)."""

    def _assert_results_match(self, a, b):
        assert a.total_accesses == b.total_accesses
        assert a.total_instructions == b.total_instructions
        assert a.total_chunks == b.total_chunks
        assert a.dram_accesses == b.dram_accesses
        assert a.remote_dram_accesses == b.remote_dram_accesses
        assert np.array_equal(a.domain_dram_requests, b.domain_dram_requests)
        assert np.array_equal(a.domain_traffic, b.domain_traffic)
        assert a.wall_cycles == pytest.approx(b.wall_cycles, rel=1e-9)
        assert a.thread_busy_cycles == pytest.approx(
            b.thread_busy_cycles, rel=1e-9
        )
        assert a.monitor_overhead_cycles == pytest.approx(
            b.monitor_overhead_cycles, rel=1e-9
        )

    def test_batched_matches_per_chunk_engine_only(self):
        # threshold 0 forces the per-chunk (summary) path, a huge
        # threshold forces full batching.
        per_chunk = run_toy(0)
        batched = run_toy(1 << 40)
        self._assert_results_match(per_chunk, batched)
        assert per_chunk.dram_accesses > 0  # the comparison is non-trivial

    def test_batched_matches_per_chunk_monitored(self):
        mon_a = NumaProfiler(IBS(period=256))
        mon_b = NumaProfiler(IBS(period=256))
        per_chunk = run_toy(0, monitor=mon_a)
        batched = run_toy(1 << 40, monitor=mon_b)
        self._assert_results_match(per_chunk, batched)
        assert mon_a.archive is not None and mon_b.archive is not None
        for tid in range(8):
            ca = mon_a.archive.thread(tid).counters
            cb = mon_b.archive.thread(tid).counters
            assert ca == cb

    def test_default_threshold_matches_forced_paths(self):
        default = ExecutionEngine(
            presets.generic(n_domains=4, cores_per_domain=2),
            ToyProgram(40_000, steps=2),
            n_threads=8,
        ).run()
        self._assert_results_match(default, run_toy(0))


def test_engine_and_profiler_agree_on_access_counts():
    """The engine's access counter and the profiler's per-thread
    ``accesses`` counters are fed from the same chunks and must agree."""
    profiler = NumaProfiler(IBS(period=512))
    machine = presets.generic(n_domains=4, cores_per_domain=2)
    result = ExecutionEngine(
        machine, ToyProgram(40_000, steps=2), n_threads=8, monitor=profiler
    ).run()
    profiled = sum(
        p.counters["accesses"] for p in profiler.archive.profiles.values()
    )
    assert result.total_accesses == profiled
    profiled_instr = sum(
        p.counters["instructions"] for p in profiler.archive.profiles.values()
    )
    assert result.total_instructions == profiled_instr


class SerialParallelCompute:
    """Pure-compute program: one serial region, one parallel region."""

    name = "serial_parallel"
    SERIAL_INSTR = 10_000
    PARALLEL_INSTR = 6_000

    def setup(self, ctx):
        pass

    def regions(self, ctx):
        def serial(ctx, tid):
            yield compute_chunk(self.SERIAL_INSTR, SourceLoc("serial_work"))

        def par(ctx, tid):
            yield compute_chunk(self.PARALLEL_INSTR, SourceLoc("par_work"))

        return [
            Region("serial", RegionKind.SERIAL, serial, SourceLoc("serial")),
            Region("par._omp", RegionKind.PARALLEL, par, SourceLoc("par._omp")),
        ]


class TestSerialRegionAccounting:
    def test_busy_and_wall_cycles(self, small_machine):
        prog = SerialParallelCompute()
        result = ExecutionEngine(small_machine, prog, n_threads=4).run()
        cpi = small_machine.base_cpi

        # Only the master thread runs (and accrues busy time in) the
        # serial region; workers sit idle through it.
        assert result.thread_busy_cycles[0] == pytest.approx(
            (prog.SERIAL_INSTR + prog.PARALLEL_INSTR) * cpi
        )
        for tid in range(1, 4):
            assert result.thread_busy_cycles[tid] == pytest.approx(
                prog.PARALLEL_INSTR * cpi
            )

        # Wall time covers the serial elapsed plus the parallel span.
        assert result.wall_cycles == pytest.approx(
            (prog.SERIAL_INSTR + prog.PARALLEL_INSTR) * cpi
        )
        assert result.region_wall_cycles["serial"] == pytest.approx(
            prog.SERIAL_INSTR * cpi
        )
        assert result.region_wall_cycles["par._omp"] == pytest.approx(
            prog.PARALLEL_INSTR * cpi
        )


class StaticStackProgram:
    """Touches one static and one stack variable from the master thread."""

    name = "static_stack"
    N_ELEMS = 4_096  # 32 KiB -> 8 pages each

    def setup(self, ctx):
        ctx.heap.static_alloc(self.N_ELEMS * 8, "gdata")
        ctx.heap.stack_alloc(self.N_ELEMS * 8, "frame", tid=0)

    def regions(self, ctx):
        g, f = ctx.var("gdata"), ctx.var("frame")

        def touch(ctx, tid):
            yield sweep_chunk(
                g, 0, self.N_ELEMS, SourceLoc("touch_static", "s.c", 1),
                is_store=True,
            )
            yield sweep_chunk(
                f, 0, self.N_ELEMS, SourceLoc("touch_stack", "s.c", 2),
                is_store=True,
            )

        return [Region("touch", RegionKind.SERIAL, touch, SourceLoc("touch"))]


class TestStaticStackProtection:
    def run(self, **profiler_kwargs):
        machine = presets.generic(n_domains=2, cores_per_domain=2)
        profiler = NumaProfiler(IBS(period=128), **profiler_kwargs)
        ExecutionEngine(
            machine, StaticStackProgram(), n_threads=2, monitor=profiler
        ).run()
        return profiler.archive

    def test_first_touch_traps_on_static_and_stack(self):
        arc = self.run(protect_static=True, protect_stack=True)
        fts = arc.thread(0).first_touches
        touched = {ft.var_name for ft in fts}
        assert touched == {"gdata", "frame"}
        n_pages = StaticStackProgram.N_ELEMS * 8 // 4096
        for ft in fts:
            assert ft.tid == 0
            assert ft.n_pages >= n_pages - 1

    def test_default_profiler_skips_static_and_stack(self):
        arc = self.run()  # protect_heap only (the default)
        assert arc.thread(0).first_touches == []


class BlockwiseSweep:
    """One thread sweeping a block-wise-distributed variable.

    Pages 0-3 live on domain 0 (local to the sweeping thread), pages 4-7
    on domain 1 (remote): the lower half of the variable is all-local and
    the upper half all-remote, the sharpest possible bin contrast.
    """

    name = "blockwise"
    N_ELEMS = 4_096  # 32 KiB -> 8 pages, above the single-bin threshold

    def setup(self, ctx):
        ctx.heap.malloc(
            self.N_ELEMS * 8,
            "x",
            (SourceLoc("main"), SourceLoc("operator new[]")),
            policy=PlacementPolicy.BLOCKWISE,
            domains=[0, 1],
        )

    def regions(self, ctx):
        x = ctx.var("x")

        def sweep(ctx, tid):
            yield sweep_chunk(x, 0, self.N_ELEMS, SourceLoc("sweep", "b.c", 3))

        return [Region("sweep", RegionKind.SERIAL, sweep, SourceLoc("sweep"))]


class TestGoldenBinAttribution:
    """Golden test: per-sample bin attribution, not proportional smearing.

    Soft-IBS at period 1 samples every access, so the expected per-bin
    metrics are exact: each of the 4 bins gets 1024 samples; the two bins
    over domain-0 pages must show zero NUMA mismatches and the two bins
    over domain-1 pages must show nothing but mismatches. The old
    proportional split would have spread the mismatches evenly across
    all four bins (512 each) — this pins the fix.
    """

    def build_record(self):
        machine = presets.generic(n_domains=2, cores_per_domain=1)
        profiler = NumaProfiler(SoftIBS(period=1), n_bins=4)
        ExecutionEngine(
            machine, BlockwiseSweep(), n_threads=1, monitor=profiler
        ).run()
        return profiler.archive.thread(0).vars["x"]

    def test_mismatches_land_in_their_own_bins(self):
        rec = self.build_record()
        assert rec.n_bins == 4
        samples_per_bin = BlockwiseSweep.N_ELEMS // 4
        for b in range(4):
            m = rec.bins[b].metrics
            assert m[MetricNames.SAMPLES] == samples_per_bin
            if b < 2:  # domain-0 (local) half of the variable
                assert m[MetricNames.NUMA_MISMATCH] == 0
                assert m[MetricNames.NUMA_MATCH] == samples_per_bin
            else:  # domain-1 (remote) half
                assert m[MetricNames.NUMA_MISMATCH] == samples_per_bin
                assert m[MetricNames.NUMA_MATCH] == 0

    def test_variable_totals_are_preserved(self):
        rec = self.build_record()
        total = sum(
            b.metrics[MetricNames.NUMA_MISMATCH] for b in rec.bins
        )
        assert total == rec.metrics[MetricNames.NUMA_MISMATCH]
        assert total == BlockwiseSweep.N_ELEMS / 2
