"""End-to-end integration: the complete paper workflow.

profile -> merge -> analyze -> advise -> transform -> re-run -> validate,
on a workload with a known ground-truth bottleneck, plus cross-mechanism
consistency and determinism checks.
"""

import pytest

from repro import (
    ExecutionEngine,
    NumaAnalysis,
    NumaProfiler,
    advise,
    apply_advice,
    merge_profiles,
    presets,
)
from repro.analysis.advisor import Action
from repro.profiler.metrics import MetricNames
from repro.sampling import DEAR, IBS, MRK, PEBS, PEBSLL, SoftIBS
from repro.workloads import PartitionedSweep

from tests.conftest import ToyProgram


def full_cycle(program_factory, n_threads=8):
    """Run the complete tool workflow; returns (baseline, optimized, advice)."""
    machine = presets.generic(n_domains=4, cores_per_domain=2)
    profiler = NumaProfiler(IBS(period=512))
    engine = ExecutionEngine(
        machine, program_factory(None), n_threads, monitor=profiler
    )
    baseline = engine.run()

    analysis = NumaAnalysis(merge_profiles(profiler.archive))
    advice = advise(
        analysis, thread_domains={t.tid: t.domain for t in engine.threads}
    )
    tuning = apply_advice(advice, machine.n_domains)

    machine2 = presets.generic(n_domains=4, cores_per_domain=2)
    optimized = ExecutionEngine(
        machine2, program_factory(tuning), n_threads
    ).run()
    return baseline, optimized, advice


class TestClosedLoop:
    def test_tool_guided_optimization_wins(self):
        baseline, optimized, advice = full_cycle(
            lambda t: PartitionedSweep(t, n_elems=400_000, steps=4)
        )
        assert advice.worth_optimizing
        assert advice.recommendations[0].action is Action.BLOCKWISE
        assert optimized.wall_seconds < baseline.wall_seconds
        assert optimized.remote_dram_fraction < baseline.remote_dram_fraction

    def test_advice_blockwise_matches_thread_layout(self):
        _, _, advice = full_cycle(
            lambda t: PartitionedSweep(t, n_elems=400_000, steps=4)
        )
        # 8 compact threads on 4 domains: ascending identity block order.
        assert advice.recommendations[0].blockwise_domains == [0, 1, 2, 3]


class TestDeterminism:
    def test_identical_runs_identical_profiles(self):
        def run_once():
            machine = presets.generic(n_domains=4, cores_per_domain=2)
            prof = NumaProfiler(IBS(period=512))
            ExecutionEngine(
                machine, ToyProgram(), 8, monitor=prof, seed=3
            ).run()
            return merge_profiles(prof.archive)

        a, b = run_once(), run_once()
        assert a.totals() == b.totals()
        assert a.var("a").ranges_for() == b.var("a").ranges_for()

    def test_wall_time_deterministic(self):
        def run_once():
            machine = presets.generic(n_domains=4, cores_per_domain=2)
            return ExecutionEngine(machine, ToyProgram(), 8).run().wall_cycles

        assert run_once() == run_once()


class TestCrossMechanismConsistency:
    """All six mechanisms must agree on the qualitative diagnosis."""

    @pytest.mark.parametrize(
        "mechanism",
        [
            IBS(period=512),
            MRK(max_rate=1e9),
            PEBS(period=512),
            DEAR(period=16),
            PEBSLL(period=16),
            SoftIBS(period=64),
        ],
        ids=["IBS", "MRK", "PEBS", "DEAR", "PEBS-LL", "Soft-IBS"],
    )
    def test_mechanism_finds_the_bottleneck(self, mechanism):
        machine = presets.generic(n_domains=4, cores_per_domain=2)
        prof = NumaProfiler(mechanism)
        ExecutionEngine(machine, ToyProgram(), 8, monitor=prof).run()
        analysis = NumaAnalysis(merge_profiles(prof.archive))
        hot = analysis.hot_variables(top=1)
        assert hot and hot[0].name == "a"
        # Substantial remote traffic visible regardless of mechanism (the
        # exact fraction is mechanism-dependent: latency-threshold
        # sampling over-weights the master's local compulsory misses).
        assert analysis.program_remote_fraction() > 0.3
        # Requests concentrate on domain 0.
        balance = analysis.domain_balance()
        assert balance[0] == balance.sum()

    def test_latency_mechanisms_agree_on_lpi_scale(self):
        def lpi_with(mech):
            machine = presets.generic(n_domains=4, cores_per_domain=2)
            prof = NumaProfiler(mech)
            ExecutionEngine(machine, ToyProgram(), 8, monitor=prof).run()
            return NumaAnalysis(merge_profiles(prof.archive)).program_lpi()

        lpi_ibs = lpi_with(IBS(period=256))
        lpi_ll = lpi_with(PEBSLL(period=4))
        assert lpi_ibs is not None and lpi_ll is not None
        # Equations (2) and (3) estimate the same quantity.
        assert lpi_ll == pytest.approx(lpi_ibs, rel=0.6)


class TestProfilesAreComplete:
    def test_every_thread_contributed(self, toy_archive):
        _, _, arc = toy_archive
        for tid, prof in arc.profiles.items():
            assert prof.counters["instructions"] > 0

    def test_sample_conservation(self, toy_archive):
        """Merged sample totals equal the mechanism's running counters."""
        engine, _, arc = toy_archive
        merged = merge_profiles(arc)
        per_thread = sum(
            p.counters["samples"] for p in arc.profiles.values()
        )
        assert merged.totals()[MetricNames.SAMPLES] == per_thread
