"""Program/region abstractions and the program context."""

import numpy as np
import pytest

from repro.errors import ProgramError
from repro.machine import presets
from repro.runtime.callstack import SourceLoc
from repro.runtime.heap import HeapAllocator
from repro.runtime.program import ProgramContext, Region, RegionKind
from repro.runtime.thread import bind_threads


@pytest.fixture
def ctx():
    machine = presets.generic(n_domains=4, cores_per_domain=2)
    heap = HeapAllocator(machine)
    threads = bind_threads(machine.topology, 8)
    return ProgramContext(machine, heap, threads, params={"k": 3}, seed=7)


class TestRegion:
    def test_repeat_must_be_positive(self):
        with pytest.raises(ProgramError):
            Region("r", RegionKind.PARALLEL, lambda c, t: [], SourceLoc("r"), repeat=0)


class TestContext:
    def test_counts(self, ctx):
        assert ctx.n_threads == 8
        assert ctx.n_domains == 4

    def test_params_copied(self, ctx):
        assert ctx.params["k"] == 3

    def test_var_lookup(self, ctx):
        ctx.heap.malloc(100, "a", (SourceLoc("main"),))
        assert ctx.var("a").name == "a"

    def test_missing_var_raises(self, ctx):
        with pytest.raises(ProgramError):
            ctx.var("ghost")

    def test_rng_deterministic_per_thread(self, ctx):
        a = ctx.rng(3).integers(0, 1000, 10)
        b = ctx.rng(3).integers(0, 1000, 10)
        c = ctx.rng(4).integers(0, 1000, 10)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_rng_salt_differs(self, ctx):
        a = ctx.rng(0, salt=1).integers(0, 1000, 10)
        b = ctx.rng(0, salt=2).integers(0, 1000, 10)
        assert not np.array_equal(a, b)


class TestPartition:
    def test_covers_everything_disjointly(self, ctx):
        bounds = [ctx.partition(1000, t) for t in range(8)]
        assert bounds[0][0] == 0
        assert bounds[-1][1] == 1000
        for (_, hi), (lo, _) in zip(bounds[:-1], bounds[1:]):
            assert hi == lo

    def test_balanced_sizes(self, ctx):
        sizes = [hi - lo for lo, hi in (ctx.partition(1000, t) for t in range(8))]
        assert max(sizes) - min(sizes) <= 1

    def test_fewer_items_than_threads(self, ctx):
        sizes = [hi - lo for lo, hi in (ctx.partition(3, t) for t in range(8))]
        assert sum(sizes) == 3
        assert all(s >= 0 for s in sizes)
