"""Calling context trees: construction, attribution, traversal."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.profiler.cct import CCT, DUMMY_ACCESS, DUMMY_FIRST_TOUCH, CCTNode
from repro.runtime.callstack import SourceLoc

MAIN = SourceLoc("main")
F = SourceLoc("f", "a.c", 1)
G = SourceLoc("g", "a.c", 2)
H = SourceLoc("h", "a.c", 3)


class TestNodeCreation:
    def test_node_for_creates_path(self):
        cct = CCT()
        node = cct.node_for((MAIN, F, G))
        assert node.frame == G
        assert node.parent.frame == F
        assert node.parent.parent is cct.root

    def test_node_for_reuses_nodes(self):
        cct = CCT()
        a = cct.node_for((MAIN, F))
        b = cct.node_for((MAIN, F))
        assert a is b

    def test_root_frame_deduplicated(self):
        cct = CCT()
        with_root = cct.node_for((MAIN, F))
        without_root = cct.node_for((F,))
        assert with_root is without_root

    def test_path_roundtrip(self):
        cct = CCT()
        node = cct.node_for((MAIN, F, G, H))
        assert node.path() == (MAIN, F, G, H)


class TestMetrics:
    def test_attribute_accumulates(self):
        cct = CCT()
        cct.attribute((MAIN, F), {"M": 3.0})
        cct.attribute((MAIN, F), {"M": 2.0})
        assert cct.node_for((MAIN, F)).metrics["M"] == 5.0

    def test_zero_values_not_stored(self):
        cct = CCT()
        node = cct.attribute((MAIN, F), {"M": 0.0})
        assert "M" not in node.metrics

    def test_subtree_metric(self):
        cct = CCT()
        cct.attribute((MAIN, F), {"M": 1.0})
        cct.attribute((MAIN, F, G), {"M": 2.0})
        cct.attribute((MAIN, H), {"M": 4.0})
        assert cct.node_for((MAIN, F)).subtree_metric("M") == 3.0
        assert cct.total("M") == 7.0

    def test_missing_metric_is_zero(self):
        cct = CCT()
        assert cct.total("NOPE") == 0.0


class TestTraversal:
    def test_walk_preorder(self):
        cct = CCT()
        cct.node_for((MAIN, F, G))
        cct.node_for((MAIN, H))
        frames = [n.frame.func for n in cct.root.walk()]
        assert frames[0] == "main"
        assert set(frames) == {"main", "f", "g", "h"}

    def test_n_nodes(self):
        cct = CCT()
        cct.node_for((MAIN, F, G))
        cct.node_for((MAIN, F, H))
        assert cct.n_nodes() == 4

    def test_find_by_function(self):
        cct = CCT()
        cct.node_for((MAIN, F, G))
        cct.node_for((MAIN, H, G))
        assert len(cct.find("g")) == 2
        assert cct.find("missing") == []


class TestDummyFrames:
    def test_dummy_separators_distinct(self):
        assert DUMMY_ACCESS != DUMMY_FIRST_TOUCH

    def test_mixed_path_attribution(self):
        """Allocation path + dummy + access path forms one augmented path."""
        cct = CCT()
        alloc = (MAIN, SourceLoc("operator new[]"))
        access = (MAIN, F)
        cct.attribute(alloc + (DUMMY_ACCESS,) + access, {"M": 1.0})
        node = cct.node_for(alloc + (DUMMY_ACCESS,) + access)
        assert node.metrics["M"] == 1.0
        assert DUMMY_ACCESS in [f.frame for f in _ancestors(node)]


def _ancestors(node: CCTNode):
    while node is not None:
        yield node
        node = node.parent


# ---------------------------------------------------------------------- #

frames = st.sampled_from([MAIN, F, G, H])
paths = st.lists(frames, min_size=1, max_size=5).map(lambda p: (MAIN,) + tuple(p))


@given(attributions=st.lists(st.tuples(paths, st.floats(0.1, 100)), min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_total_equals_sum_of_attributions(attributions):
    """Invariant: the tree total of a metric equals the sum of everything
    attributed, regardless of path structure."""
    cct = CCT()
    expected = 0.0
    for path, value in attributions:
        cct.attribute(path, {"M": value})
        expected += value
    assert cct.total("M") == pytest.approx(expected)


@given(ps=st.lists(paths, min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_node_count_bounded_by_frames(ps):
    """The CCT never holds more nodes than 1 + total frames attributed."""
    cct = CCT()
    for p in ps:
        cct.node_for(p)
    assert cct.n_nodes() <= 1 + sum(len(p) for p in ps)
