"""Pattern classification from per-thread ranges."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.patterns import (
    AccessPattern,
    blockwise_domains_from_ranges,
    classify_ranges,
)


def blocked(n=8, width=None):
    width = width if width is not None else 1.0 / n
    return {t: (t / n, t / n + width) for t in range(n)}


def staggered(n=8):
    """Ascending starts, ~80% coverage each (the Blackscholes shape)."""
    return {t: (0.2 * t / n, 0.8 + 0.2 * t / n) for t in range(n)}


def uniform(n=8):
    return {t: (0.0, 1.0) for t in range(n)}


def irregular(n=8, seed=3):
    rng = np.random.default_rng(seed)
    out = {}
    for t in range(n):
        lo = rng.uniform(0, 0.7)
        out[t] = (lo, lo + rng.uniform(0.05, 0.3))
    return out


class TestClassification:
    def test_blocked(self):
        assert classify_ranges(blocked()).pattern is AccessPattern.BLOCKED

    def test_blocked_descending_tids(self):
        ranges = {t: ((7 - t) / 8, (8 - t) / 8) for t in range(8)}
        assert classify_ranges(ranges).pattern is AccessPattern.BLOCKED

    def test_staggered_overlap(self):
        rep = classify_ranges(staggered())
        assert rep.pattern is AccessPattern.STAGGERED_OVERLAP
        assert rep.mean_overlap > 0.5

    def test_uniform(self):
        assert classify_ranges(uniform()).pattern is AccessPattern.UNIFORM_ALL

    def test_irregular(self):
        assert classify_ranges(irregular()).pattern is AccessPattern.IRREGULAR

    def test_single_thread(self):
        rep = classify_ranges({0: (0.0, 1.0)})
        assert rep.pattern is AccessPattern.SINGLE_THREAD

    def test_empty(self):
        assert classify_ranges({}).pattern is AccessPattern.IRREGULAR

    def test_report_statistics(self):
        rep = classify_ranges(blocked())
        assert rep.n_threads == 8
        assert rep.mean_coverage == pytest.approx(1 / 8)
        assert rep.midpoint_monotonicity == pytest.approx(1.0)


class TestBlockwiseDomains:
    def test_blocked_pattern_maps_identity(self):
        ranges = blocked(8)
        tdom = {t: t // 2 for t in range(8)}  # 2 threads per domain
        order = blockwise_domains_from_ranges(ranges, tdom, 4)
        assert order == [0, 1, 2, 3]

    def test_init_thread_outvoted(self):
        """A thread covering everything (serial init) must not dominate."""
        ranges = blocked(8)
        ranges[0] = (0.0, 1.0)
        tdom = {t: t // 2 for t in range(8)}
        order = blockwise_domains_from_ranges(ranges, tdom, 4)
        assert order[1:] == [1, 2, 3]

    def test_no_votes_falls_back_round_robin(self):
        order = blockwise_domains_from_ranges({}, {}, 3)
        assert order == [0, 1, 2]


@given(
    n=st.integers(min_value=2, max_value=32),
    jitter=st.floats(min_value=0.0, max_value=0.02),
)
@settings(max_examples=40, deadline=None)
def test_blocked_detection_robust_to_jitter(n, jitter):
    """Blocked partitions with small boundary noise still classify blocked."""
    rng = np.random.default_rng(0)
    ranges = {
        t: (
            max(0.0, t / n - jitter * rng.random()),
            min(1.0, (t + 1) / n + jitter * rng.random()),
        )
        for t in range(n)
    }
    assert classify_ranges(ranges).pattern is AccessPattern.BLOCKED


@given(perm_seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=30, deadline=None)
def test_classification_ignores_tid_relabeling_monotonicity(perm_seed):
    """Shuffling which thread owns which block destroys monotonicity, so
    blocked slices under a random thread assignment classify irregular
    (this is exactly AMG's matvec decomposition, Fig. 4)."""
    rng = np.random.default_rng(perm_seed)
    n = 16
    perm = rng.permutation(n)
    ranges = {t: (perm[t] / n, (perm[t] + 1) / n) for t in range(n)}
    rep = classify_ranges(ranges)
    if np.all(perm == np.arange(n)) or np.all(perm == np.arange(n)[::-1]):
        assert rep.pattern is AccessPattern.BLOCKED
    else:
        assert rep.pattern in (
            AccessPattern.IRREGULAR, AccessPattern.BLOCKED,
            AccessPattern.STAGGERED_OVERLAP,
        )
        # Strong shuffles must not classify blocked.
        if abs(rep.midpoint_monotonicity) < 0.5:
            assert rep.pattern is AccessPattern.IRREGULAR
