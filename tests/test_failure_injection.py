"""Failure injection: the simulator fails loudly and precisely.

A reproduction is only trustworthy if its error paths are: a monitor that
crashes must not be swallowed; out-of-memory, bad chunks, and
inconsistent resolutions must surface as the right exception at the
right moment.
"""

import pytest

from repro.errors import AllocationError, ProfileError, ProgramError
from repro.machine import presets
from repro.profiler import NumaProfiler
from repro.runtime import ExecutionEngine, Monitor
from repro.runtime.callstack import SourceLoc
from repro.runtime.chunks import sweep_chunk
from repro.runtime.program import Region, RegionKind
from repro.sampling import IBS

from tests.conftest import ToyProgram


class TestMonitorFailures:
    def test_monitor_exception_propagates(self, small_machine, toy_program):
        class Broken(Monitor):
            def on_chunk(self, *args):
                raise RuntimeError("probe died")

        with pytest.raises(RuntimeError, match="probe died"):
            ExecutionEngine(
                small_machine, toy_program, 4, monitor=Broken()
            ).run()

    def test_alloc_hook_exception_propagates(self, small_machine, toy_program):
        class Broken(Monitor):
            def on_alloc(self, var):
                raise ValueError("bad wrapper")

        with pytest.raises(ValueError, match="bad wrapper"):
            ExecutionEngine(
                small_machine, toy_program, 4, monitor=Broken()
            ).run()


class TestMemoryExhaustion:
    def test_out_of_frames_raises_during_first_touch(self):
        machine = presets.generic(
            n_domains=2, cores_per_domain=1, frames_per_domain=4
        )
        with pytest.raises(AllocationError, match="out of simulated memory"):
            ExecutionEngine(machine, ToyProgram(n_elems=50_000), 2).run()

    def test_strict_bind_fails_at_allocation(self):
        from repro.machine.pagetable import PlacementPolicy
        from repro.optim.policies import NumaTuning, PlacementSpec
        from repro.workloads import PartitionedSweep

        machine = presets.generic(
            n_domains=2, cores_per_domain=1, frames_per_domain=4
        )
        tuning = NumaTuning(
            placement={"data": PlacementSpec(PlacementPolicy.BIND, (0,))}
        )
        with pytest.raises(AllocationError):
            ExecutionEngine(
                machine, PartitionedSweep(tuning, n_elems=50_000), 2
            ).run()


class TestMalformedPrograms:
    def test_chunk_outside_variable_bounds(self, small_machine):
        class Bad:
            name = "bad"

            def setup(self, ctx):
                ctx.heap.malloc(800, "v", (SourceLoc("main"),))

            def regions(self, ctx):
                v = ctx.var("v")

                def kernel(ctx, tid):
                    yield sweep_chunk(v, 0, 200, SourceLoc("k"))  # 200 > 100

                return [
                    Region("r", RegionKind.SERIAL, kernel, SourceLoc("r"))
                ]

        with pytest.raises(ProgramError, match="outside"):
            ExecutionEngine(small_machine, Bad(), 1).run()

    def test_setup_referencing_missing_variable(self, small_machine):
        class Bad:
            name = "bad"

            def setup(self, ctx):
                pass

            def regions(self, ctx):
                ctx.var("ghost")
                return []

        with pytest.raises(ProgramError, match="ghost"):
            ExecutionEngine(small_machine, Bad(), 1).run()


class TestProfilerConsistency:
    def test_resolution_mismatch_detected(self, small_machine, toy_program):
        """If the data-centric registry disagrees with ground truth, the
        profiler refuses to continue silently."""
        profiler = NumaProfiler(IBS(period=64))

        class Sabotaged(NumaProfiler):
            def on_alloc(self, var):
                super().on_alloc(var)
                # Corrupt the registry: rename the variable under its feet.
                self.registry._vars.clear()
                import copy

                fake = copy.copy(var)
                fake.name = "impostor"
                self.registry.register(fake)

        sab = Sabotaged(IBS(period=64))
        with pytest.raises(ProfileError, match="impostor"):
            ExecutionEngine(
                small_machine, toy_program, 4, monitor=sab
            ).run()

    def test_profiler_before_run_start(self):
        profiler = NumaProfiler(IBS())
        with pytest.raises(ProfileError):
            profiler._profile(0)
