"""Sampling base: periodic selection with carry, capabilities, costs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MechanismError
from repro.machine import presets
from repro.runtime.callstack import SourceLoc
from repro.runtime.chunks import AccessChunk
from repro.runtime.heap import HeapAllocator
from repro.sampling import IBS
from repro.sampling.base import SampleBatch, periodic_positions


class TestPeriodicPositions:
    def test_period_one_selects_all(self):
        pos, carry = periodic_positions(0, 10, 1)
        np.testing.assert_array_equal(pos, np.arange(10))
        assert carry == 0

    def test_basic_period(self):
        pos, carry = periodic_positions(0, 10, 3)
        np.testing.assert_array_equal(pos, [2, 5, 8])
        assert carry == 1

    def test_carry_continues_across_chunks(self):
        """Sampling every 3rd event across two chunks of 5 equals sampling
        one chunk of 10."""
        p1, c1 = periodic_positions(0, 5, 3)
        p2, c2 = periodic_positions(c1, 5, 3)
        combined = sorted(p1.tolist() + (p2 + 5).tolist())
        whole, cw = periodic_positions(0, 10, 3)
        assert combined == whole.tolist()
        assert c2 == cw

    def test_no_events(self):
        pos, carry = periodic_positions(2, 0, 5)
        assert pos.size == 0
        assert carry == 2

    def test_period_larger_than_chunk(self):
        pos, carry = periodic_positions(0, 3, 10)
        assert pos.size == 0
        assert carry == 3

    def test_invalid_period(self):
        with pytest.raises(MechanismError):
            periodic_positions(0, 10, 0)


@given(
    chunks=st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=20),
    period=st.integers(min_value=1, max_value=97),
)
@settings(max_examples=60, deadline=None)
def test_periodic_positions_exact_rate(chunks, period):
    """Invariant: across any chunking, exactly every period-th event is
    selected — total samples == total_events // period."""
    carry = 0
    total = 0
    for n in chunks:
        pos, carry = periodic_positions(carry, n, period)
        total += pos.size
    assert total == sum(chunks) // period


@given(
    n=st.integers(min_value=1, max_value=1000),
    period=st.integers(min_value=1, max_value=50),
    carry=st.integers(min_value=0, max_value=49),
)
@settings(max_examples=60, deadline=None)
def test_periodic_positions_spacing(n, period, carry):
    """Selected positions are exactly ``period`` apart."""
    pos, new_carry = periodic_positions(min(carry, period - 1), n, period)
    if pos.size >= 2:
        assert np.all(np.diff(pos) == period)
    assert 0 <= new_carry < period
    if pos.size:
        assert pos[0] < n and pos[-1] < n


class TestMechanismLifecycle:
    def test_configure_resets_state(self):
        machine = presets.generic()
        mech = IBS(period=100)
        mech.configure(machine)
        heap = HeapAllocator(machine)
        var = heap.malloc(8 * 1000, "v", (SourceLoc("main"),))
        chunk = AccessChunk(var, var.base + np.arange(500) * 8, 2000, SourceLoc("k"))
        mech.select(0, chunk, np.zeros(500, np.uint8), np.zeros(500), np.zeros(500))
        assert mech.total_samples > 0
        mech.configure(machine)
        assert mech.total_samples == 0

    def test_invalid_period(self):
        with pytest.raises(MechanismError):
            IBS(period=0)

    def test_cost_components(self):
        mech = IBS(period=100, per_sample_cycles=10.0, per_access_cycles=2.0,
                   instr_tax_cycles=0.5)
        machine = presets.generic()
        heap = HeapAllocator(machine)
        var = heap.malloc(8 * 100, "v", (SourceLoc("main"),))
        chunk = AccessChunk(var, var.base + np.arange(100) * 8, 1000, SourceLoc("k"))
        batch = SampleBatch(
            indices=np.arange(3), n_sampled_instructions=5,
            n_events_total=100, latency_captured=True,
        )
        cost = mech.cost_cycles(batch, chunk)
        # Per-sample cost applies to every sample interrupt (all 5
        # instruction samples), not just the 3 memory samples.
        assert cost == pytest.approx(5 * 10 + 100 * 2 + 1000 * 0.5)

    def test_describe(self):
        assert "IBS" in IBS().describe()


class TestThreadOrderInvariance:
    """Per-thread jitter streams: samples depend only on (seed, tid).

    Regression for the shared-RNG bug where the jitter a thread saw
    depended on how many draws *other* threads had consumed first — any
    change in thread interleaving (or sharding threads across worker
    processes) silently moved every sample position.
    """

    @staticmethod
    def _chunks(machine, n_threads=3, n=400):
        heap = HeapAllocator(machine)
        out = []
        for tid in range(n_threads):
            var = heap.malloc(8 * n, f"v{tid}", (SourceLoc("main"),))
            out.append(AccessChunk(
                var, var.base + np.arange(n) * 8, 4 * n, SourceLoc("k")
            ))
        return out

    def _samples_in_order(self, order, chunks, machine):
        mech = IBS(period=32)
        mech.configure(machine, seed=77)
        zeros = np.zeros(chunks[0].n_accesses)
        lv = np.zeros(chunks[0].n_accesses, np.uint8)
        return {
            tid: mech.select(tid, chunks[tid], lv, zeros, zeros).indices
            for tid in order
        }

    def test_select_invariant_to_thread_order(self):
        machine = presets.generic()
        chunks = self._chunks(machine)
        fwd = self._samples_in_order([0, 1, 2], chunks, machine)
        rev = self._samples_in_order([2, 1, 0], chunks, machine)
        for tid in range(3):
            np.testing.assert_array_equal(fwd[tid], rev[tid])

    def test_streams_differ_across_threads(self):
        machine = presets.generic()
        chunks = self._chunks(machine)
        got = self._samples_in_order([0, 1, 2], chunks, machine)
        assert not np.array_equal(got[0], got[1])

    def test_subset_of_threads_sees_same_stream(self):
        """A worker running only tid 2 draws exactly what a full run
        gives tid 2 — the property the sharded engine is built on."""
        machine = presets.generic()
        chunks = self._chunks(machine)
        full = self._samples_in_order([0, 1, 2], chunks, machine)
        alone = self._samples_in_order([2], chunks, machine)
        np.testing.assert_array_equal(full[2], alone[2])
