"""Unit helpers: page/line math and conversions."""

import numpy as np
import pytest

from repro import units


class TestPageMath:
    def test_page_of_scalar(self):
        assert units.page_of(0) == 0
        assert units.page_of(4095) == 0
        assert units.page_of(4096) == 1

    def test_page_of_array(self):
        addrs = np.array([0, 4095, 4096, 8192])
        np.testing.assert_array_equal(units.page_of(addrs), [0, 0, 1, 2])

    def test_page_base(self):
        assert units.page_base(4097) == 4096
        assert units.page_base(4096) == 4096

    def test_pages_spanned_exact(self):
        assert units.pages_spanned(0, 4096) == 1
        assert units.pages_spanned(0, 4097) == 2

    def test_pages_spanned_unaligned_base(self):
        # 100 bytes starting near a page end span two pages.
        assert units.pages_spanned(4090, 100) == 2

    def test_pages_spanned_zero_length(self):
        assert units.pages_spanned(1234, 0) == 0

    def test_custom_page_size(self):
        assert units.pages_spanned(0, 65536, page_size=65536) == 1


class TestLineMath:
    def test_line_of(self):
        assert units.line_of(63) == 0
        assert units.line_of(64) == 1

    def test_line_of_array(self):
        np.testing.assert_array_equal(
            units.line_of(np.array([0, 64, 127])), [0, 1, 1]
        )


class TestAlignUp:
    def test_already_aligned(self):
        assert units.align_up(4096, 4096) == 4096

    def test_rounds_up(self):
        assert units.align_up(1, 4096) == 4096
        assert units.align_up(4097, 4096) == 8192

    def test_zero(self):
        assert units.align_up(0, 64) == 0

    def test_invalid_alignment(self):
        with pytest.raises(ValueError):
            units.align_up(10, 0)


class TestCycleConversion:
    def test_cycles_to_seconds(self):
        assert units.cycles_to_seconds(2e9, 2.0) == pytest.approx(1.0)

    def test_invalid_clock(self):
        with pytest.raises(ValueError):
            units.cycles_to_seconds(1, 0)


class TestFastUnique:
    def test_sorted_input(self):
        from repro.units import fast_unique

        a = np.array([1, 1, 2, 3, 3, 3, 7])
        np.testing.assert_array_equal(fast_unique(a), [1, 2, 3, 7])

    def test_unsorted_input(self):
        from repro.units import fast_unique

        a = np.array([5, 1, 5, 2])
        np.testing.assert_array_equal(fast_unique(a), [1, 2, 5])

    def test_empty_and_single(self):
        from repro.units import fast_unique

        assert fast_unique(np.array([], dtype=np.int64)).size == 0
        np.testing.assert_array_equal(fast_unique(np.array([9])), [9])


class TestFirstOccurrenceMask:
    def test_sorted(self):
        from repro.units import first_occurrence_mask

        a = np.array([1, 1, 2, 2, 2, 3])
        np.testing.assert_array_equal(
            first_occurrence_mask(a), [1, 0, 1, 0, 0, 1]
        )

    def test_unsorted_marks_first_in_order(self):
        from repro.units import first_occurrence_mask

        a = np.array([3, 1, 3, 1, 2])
        np.testing.assert_array_equal(
            first_occurrence_mask(a), [1, 1, 0, 0, 1]
        )

    def test_empty(self):
        from repro.units import first_occurrence_mask

        assert first_occurrence_mask(np.array([])).size == 0


def test_fast_unique_matches_numpy_property():
    from hypothesis import given, settings, strategies as st

    from repro.units import fast_unique

    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=200))
    @settings(max_examples=60, deadline=None)
    def check(values):
        a = np.array(values, dtype=np.int64)
        np.testing.assert_array_equal(fast_unique(a), np.unique(a))

    check()


def test_first_occurrence_mask_property():
    from hypothesis import given, settings, strategies as st

    from repro.units import first_occurrence_mask

    @given(st.lists(st.integers(min_value=0, max_value=30), max_size=200))
    @settings(max_examples=60, deadline=None)
    def check(values):
        a = np.array(values, dtype=np.int64)
        mask = first_occurrence_mask(a)
        # Masked values are exactly the distinct values.
        np.testing.assert_array_equal(np.sort(a[mask]), np.unique(a))
        # And each is the FIRST occurrence of its value.
        for i in np.nonzero(mask)[0]:
            assert a[i] not in a[:i]

    check()
