"""End-to-end telemetry: a traced monitored run covers the whole stack."""

from __future__ import annotations

import pytest

from repro import NumaAnalysis, NumaProfiler, advise, merge_profiles, obs
from repro.bench.perf import measure_noop_overhead, run_perf
from repro.obs import chrome_trace, phase_breakdown, validate_chrome_trace
from repro.runtime import ExecutionEngine
from repro.sampling import IBS

from .conftest import ToyProgram


@pytest.fixture
def traced():
    """Enable the global tracer for one test; always restore it."""
    tracer = obs.enable()
    yield tracer
    obs.disable()
    tracer.clear()


def _traced_pipeline(small_machine):
    profiler = NumaProfiler(IBS(period=512))
    engine = ExecutionEngine(
        small_machine, ToyProgram(n_elems=60_000, steps=2), 8,
        monitor=profiler,
    )
    engine.run()
    merged = merge_profiles(profiler.archive)
    advise(NumaAnalysis(merged),
           thread_domains={t.tid: t.domain for t in engine.threads})
    return merged


class TestTracedPipeline:
    def test_all_phases_covered(self, traced, small_machine):
        _traced_pipeline(small_machine)
        cats = {cat for (cat, _name) in traced.self_ns}
        assert {"engine", "sampling", "profiler", "analysis"} <= cats
        assert traced.counters["engine.steps"] > 0
        assert traced.counters["sampling.samples.selected"] > 0
        assert traced.gauges["profiler.code_rows"] > 0

    def test_trace_is_valid_chrome_json(self, traced, small_machine):
        _traced_pipeline(small_machine)
        doc = chrome_trace(traced)
        assert validate_chrome_trace(doc) == []
        # One track per simulated thread plus the harness track.
        tids = {ev["tid"] for ev in doc["traceEvents"]}
        assert 0 in tids and len(tids) >= 9

    def test_self_times_partition_engine_run(self, traced, small_machine):
        _traced_pipeline(small_machine)
        pb = phase_breakdown(traced)
        # Spans inside engine.run (engine/sampling/profiler) partition its
        # inclusive duration exactly; analysis spans sit outside it.
        inside = sum(
            pb["by_category"][cat]
            for cat in ("engine", "sampling", "profiler")
        )
        run_total_s = traced.total_ns[("engine", "engine.run")] / 1e9
        assert inside == pytest.approx(run_total_s, rel=1e-9)


class TestNoopOverhead:
    def test_disabled_telemetry_under_five_percent(self):
        est = measure_noop_overhead(
            preset="generic", threads=4, scale=0.02, repeats=2,
            bench_loops=50_000,
        )
        assert est["instrumentation_sites"] > 0
        assert est["overhead_pct"] < 5.0

    def test_global_tracer_restored(self):
        before = obs.TRACER
        measure_noop_overhead(
            preset="generic", threads=2, scale=0.02, repeats=1,
            bench_loops=1_000,
        )
        assert obs.TRACER is before
        assert not obs.TRACER.enabled


class TestPhaseBreakdownDoc:
    def test_run_perf_records_phases(self):
        doc = run_perf(
            preset="generic", threads=8, mechanism="IBS", period=512,
            workloads={"toy": lambda: ToyProgram(n_elems=40_000, steps=2)},
            phase_breakdown=True,
        )
        pb = doc["workloads"]["toy"]["phase_breakdown"]
        assert {"engine", "sampling", "profiler"} <= set(pb["by_category"])
        # Acceptance: recorded self-times sum to the traced run's wall
        # time within 10%.
        assert pb["total_self_s"] == pytest.approx(pb["wall_s"], rel=0.10)
        tot = doc["totals"]["phase_breakdown"]
        assert tot["total_self_s"] == pytest.approx(tot["wall_s"], rel=0.10)
        # A phase-breakdown run must leave the global tracer untouched.
        assert not obs.TRACER.enabled
