"""Thread binding policies."""

import pytest

from repro.errors import BindingError
from repro.machine.topology import NumaTopology
from repro.runtime.thread import BindingPolicy, SimThread, bind_threads


@pytest.fixture
def topo():
    return NumaTopology(n_domains=4, cores_per_domain=2)


class TestCompact:
    def test_fills_domains_in_order(self, topo):
        threads = bind_threads(topo, 4, BindingPolicy.COMPACT)
        assert [t.domain for t in threads] == [0, 0, 1, 1]

    def test_cpu_equals_tid(self, topo):
        threads = bind_threads(topo, 8, BindingPolicy.COMPACT)
        assert all(t.cpu == t.tid for t in threads)


class TestScatter:
    def test_round_robin_over_domains(self, topo):
        threads = bind_threads(topo, 4, BindingPolicy.SCATTER)
        assert [t.domain for t in threads] == [0, 1, 2, 3]

    def test_wraps_within_domains(self, topo):
        threads = bind_threads(topo, 8, BindingPolicy.SCATTER)
        assert [t.domain for t in threads] == [0, 1, 2, 3, 0, 1, 2, 3]
        # No CPU is used twice.
        assert len({t.cpu for t in threads}) == 8

    def test_scatter_with_smt(self):
        topo = NumaTopology(n_domains=2, cores_per_domain=2, smt=2)
        threads = bind_threads(topo, 8, BindingPolicy.SCATTER)
        assert len({t.cpu for t in threads}) == 8


class TestValidation:
    def test_zero_threads_rejected(self, topo):
        with pytest.raises(BindingError):
            bind_threads(topo, 0)

    def test_oversubscription_rejected(self, topo):
        with pytest.raises(BindingError):
            bind_threads(topo, 9)

    def test_simthread_validation(self):
        with pytest.raises(BindingError):
            SimThread(tid=-1, cpu=0, domain=0)

    def test_domain_consistent_with_topology(self, topo):
        for t in bind_threads(topo, 8):
            assert t.domain == topo.domain_of_cpu(t.cpu)
