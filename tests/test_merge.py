"""Profile merging with the [min, max] custom reduction (Section 7.2)."""

import numpy as np
import pytest

from repro.analysis.merge import merge_profiles, merge_ranges
from repro.errors import ProfileError
from repro.profiler.metrics import MetricNames
from repro.profiler.profile_data import ProfileArchive


class TestMergeRanges:
    def test_min_max_reduction(self):
        assert merge_ranges([(5, 10), (2, 7), (8, 20)]) == (2, 20)

    def test_ignores_unset(self):
        assert merge_ranges([(np.inf, -np.inf), (3, 4)]) == (3, 4)

    def test_all_unset(self):
        assert merge_ranges([(np.inf, -np.inf)]) is None
        assert merge_ranges([]) is None


class TestMergeProfiles:
    def test_empty_archive_rejected(self):
        arc = ProfileArchive("p", "m", 4, "IBS", None)
        with pytest.raises(ProfileError):
            merge_profiles(arc)

    def test_counters_sum(self, toy_archive):
        _, _, arc = toy_archive
        merged = merge_profiles(arc)
        expected = sum(
            p.counters["instructions"] for p in arc.profiles.values()
        )
        assert merged.counters["instructions"] == expected

    def test_cct_metrics_sum_across_threads(self, toy_archive):
        _, _, arc = toy_archive
        merged = merge_profiles(arc)
        per_thread = sum(
            p.cct.total(MetricNames.SAMPLES) for p in arc.profiles.values()
        )
        assert merged.cct.total(MetricNames.SAMPLES) == per_thread

    def test_var_metrics_sum(self, toy_archive):
        _, _, arc = toy_archive
        merged = merge_profiles(arc)
        mv = merged.var("a")
        expected = sum(
            p.vars["a"].metrics[MetricNames.SAMPLES]
            for p in arc.profiles.values()
            if "a" in p.vars
        )
        assert mv.metrics[MetricNames.SAMPLES] == expected

    def test_bin_metrics_preserved(self, toy_archive):
        _, _, arc = toy_archive
        merged = merge_profiles(arc)
        mv = merged.var("a")
        assert len(mv.bin_metrics) == mv.n_bins
        bin_total = sum(
            b.get(MetricNames.SAMPLES, 0.0) for b in mv.bin_metrics
        )
        assert bin_total == pytest.approx(mv.metrics[MetricNames.SAMPLES])

    def test_per_thread_ranges_preserved(self, toy_archive):
        """The address-centric view needs each thread's own range."""
        _, _, arc = toy_archive
        merged = merge_profiles(arc)
        ranges = merged.var("a").ranges_for()
        assert set(ranges) == set(range(8))
        # Worker slices are disjoint and ascending by tid (blocked pattern).
        mids = [np.mean(ranges[t]) for t in range(1, 8)]
        assert mids == sorted(mids)

    def test_normalized_ranges_in_unit_interval(self, toy_archive):
        _, _, arc = toy_archive
        merged = merge_profiles(arc)
        for lo, hi in merged.var("a").normalized_ranges().values():
            assert 0.0 <= lo <= hi <= 1.0 + 1e-9

    def test_context_scoped_ranges(self, toy_archive):
        _, _, arc = toy_archive
        merged = merge_profiles(arc)
        mv = merged.var("a")
        compute_ctx = next(
            p for p in mv.contexts() if any("compute" in f.func for f in p)
        )
        scoped = mv.normalized_ranges(compute_ctx)
        # Thread 0's compute slice is narrow even though its whole-program
        # range (including init) spans everything.
        lo, hi = scoped[0]
        assert hi - lo < 0.2

    def test_first_touches_merged_to_variable(self, toy_archive):
        _, _, arc = toy_archive
        merged = merge_profiles(arc)
        mv = merged.var("a")
        assert len(mv.first_touches) == 1
        paths = mv.first_touch_paths()
        assert len(paths) == 1
        assert sum(paths.values()) == mv.first_touches[0].n_pages

    def test_totals_match_cct(self, toy_archive):
        _, _, arc = toy_archive
        merged = merge_profiles(arc)
        totals = merged.totals()
        assert totals[MetricNames.SAMPLES] == merged.cct.total(MetricNames.SAMPLES)

    def test_unknown_var_raises(self, toy_archive):
        _, _, arc = toy_archive
        merged = merge_profiles(arc)
        with pytest.raises(ProfileError):
            merged.var("ghost")


# ---------------------------------------------------------------------- #
# property-based tests
# ---------------------------------------------------------------------- #

from hypothesis import given, settings, strategies as st

finite_ranges = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=0, max_value=10**6),
    ).map(lambda t: (min(t), max(t))),
    min_size=1,
    max_size=20,
)


@given(ranges=finite_ranges)
@settings(max_examples=50, deadline=None)
def test_merge_ranges_brackets_all_inputs(ranges):
    """[min, max] reduction result contains every input range."""
    lo, hi = merge_ranges(ranges)
    for a, b in ranges:
        assert lo <= a and b <= hi
    assert (lo, hi) in [
        (min(a for a, _ in ranges), max(b for _, b in ranges))
    ]


@given(ranges=finite_ranges)
@settings(max_examples=50, deadline=None)
def test_merge_ranges_is_order_invariant_and_idempotent(ranges):
    merged = merge_ranges(ranges)
    assert merge_ranges(list(reversed(ranges))) == merged
    assert merge_ranges([merged, merged]) == merged


@given(
    split_at=st.integers(min_value=1, max_value=7),
)
@settings(max_examples=8, deadline=None)
def test_merge_is_associative_over_thread_subsets(split_at, toy_archive_factory):
    """Merging all threads at once equals merging disjoint subsets'
    metrics and summing — the property that lets hpcprof process
    profile files in any order."""
    arc = toy_archive_factory()
    full = merge_profiles(arc)

    import copy

    left = copy.copy(arc)
    left.profiles = {t: p for t, p in arc.profiles.items() if t < split_at}
    right = copy.copy(arc)
    right.profiles = {t: p for t, p in arc.profiles.items() if t >= split_at}
    m_l, m_r = merge_profiles(left), merge_profiles(right)

    for key, value in full.counters.items():
        assert m_l.counters.get(key, 0) + m_r.counters.get(key, 0) == value
    t_full = full.totals()
    t_l, t_r = m_l.totals(), m_r.totals()
    for key, value in t_full.items():
        assert t_l.get(key, 0.0) + t_r.get(key, 0.0) == pytest.approx(value)
