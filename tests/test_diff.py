"""Profile diffing: before/after optimization comparison."""

import pytest

from repro.analysis import diff_profiles, merge_profiles
from repro.machine import presets
from repro.optim.policies import NumaTuning
from repro.profiler import NumaProfiler
from repro.runtime import ExecutionEngine
from repro.sampling import IBS
from repro.workloads import PartitionedSweep


def profiled(tuning=None):
    machine = presets.generic(n_domains=4, cores_per_domain=2)
    prof = NumaProfiler(IBS(period=512))
    ExecutionEngine(
        machine, PartitionedSweep(tuning, n_elems=400_000, steps=3), 8,
        monitor=prof,
    ).run()
    return merge_profiles(prof.archive)


@pytest.fixture(scope="module")
def diff():
    before = profiled()
    after = profiled(NumaTuning(parallel_init={"data"}))
    return diff_profiles(before, after)


class TestDiff:
    def test_remote_fraction_collapses(self, diff):
        assert diff.remote_before > 0.4
        assert diff.remote_after < 0.05

    def test_lpi_falls_below_threshold(self, diff):
        assert diff.lpi_before > 0.1
        assert diff.lpi_after < diff.lpi_before

    def test_variable_delta(self, diff):
        v = diff.variable("data")
        assert v.remote_fraction_delta < -0.4
        assert v.mismatch_before > 1.0
        assert v.mismatch_after < 0.1
        assert v.samples_before > 0 and v.samples_after > 0

    def test_unknown_variable(self, diff):
        with pytest.raises(KeyError):
            diff.variable("ghost")

    def test_render(self, diff):
        text = diff.render()
        assert "lpi_NUMA" in text
        assert "data" in text
        assert "->" in text

    def test_variable_missing_on_one_side(self):
        before = profiled()
        after = profiled()
        del after.vars["data"]
        d = diff_profiles(before, after)
        v = d.variable("data")
        assert v.samples_after == 0.0
