"""Profile diffing: before/after optimization comparison."""

import pytest

from repro.analysis import diff_profiles, merge_profiles
from repro.machine import presets
from repro.optim.policies import NumaTuning
from repro.profiler import NumaProfiler
from repro.runtime import ExecutionEngine
from repro.sampling import IBS
from repro.workloads import PartitionedSweep


def profiled(tuning=None):
    machine = presets.generic(n_domains=4, cores_per_domain=2)
    prof = NumaProfiler(IBS(period=512))
    ExecutionEngine(
        machine, PartitionedSweep(tuning, n_elems=400_000, steps=3), 8,
        monitor=prof,
    ).run()
    return merge_profiles(prof.archive)


@pytest.fixture(scope="module")
def diff():
    before = profiled()
    after = profiled(NumaTuning(parallel_init={"data"}))
    return diff_profiles(before, after)


class TestDiff:
    def test_remote_fraction_collapses(self, diff):
        assert diff.remote_before > 0.4
        assert diff.remote_after < 0.05

    def test_lpi_falls_below_threshold(self, diff):
        assert diff.lpi_before > 0.1
        assert diff.lpi_after < diff.lpi_before

    def test_variable_delta(self, diff):
        v = diff.variable("data")
        assert v.remote_fraction_delta < -0.4
        assert v.mismatch_before > 1.0
        assert v.mismatch_after < 0.1
        assert v.samples_before > 0 and v.samples_after > 0

    def test_unknown_variable(self, diff):
        with pytest.raises(KeyError):
            diff.variable("ghost")

    def test_render(self, diff):
        text = diff.render()
        assert "lpi_NUMA" in text
        assert "data" in text
        assert "->" in text

    def test_variable_missing_on_one_side(self):
        before = profiled()
        after = profiled()
        del after.vars["data"]
        d = diff_profiles(before, after)
        v = d.variable("data")
        assert v.samples_after == 0.0
        # Missing is None, not "perfectly local" 0.0.
        assert v.remote_fraction_after is None
        assert v.mismatch_after is None
        assert v.remote_fraction_before is not None
        assert v.remote_fraction_delta is None
        # Renders as "-" in the data row for the missing side.
        row = next(
            line for line in d.render().splitlines()
            if line.strip().startswith("data")
        )
        assert row.rstrip().endswith("-")

    def test_render_columns_aligned(self, diff):
        # Header and every data row must have identical width so the
        # columns line up — including inf mismatch ratios.
        lines = diff.render().splitlines()
        header_idx = next(
            i for i, line in enumerate(lines) if "variable" in line
        )
        widths = {len(line) for line in lines[header_idx:]}
        assert len(widths) == 1, lines[header_idx:]

    def test_render_aligned_with_inf_and_missing(self):
        from repro.analysis.diff import ProfileDiff, VariableDelta

        d = ProfileDiff(
            program="t", lpi_before=0.2, lpi_after=0.05,
            remote_before=0.5, remote_after=0.1,
            variables=(
                VariableDelta("a", 0.5, 0.1, float("inf"), 0.2, 10, 10),
                VariableDelta("b", 0.4, None, 1.5, None, 8, 0.0),
                VariableDelta("c", None, 0.3, None, 0.9, 0.0, 6),
            ),
        )
        lines = d.render().splitlines()
        header_idx = next(
            i for i, line in enumerate(lines) if "variable" in line
        )
        widths = {len(line) for line in lines[header_idx:]}
        assert len(widths) == 1, lines[header_idx:]
