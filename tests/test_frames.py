"""Physical frame accounting: reservation, spilling, release."""

import numpy as np
import pytest

from repro.errors import AllocationError
from repro.machine.frames import FrameManager
from repro.machine.topology import NumaTopology


@pytest.fixture
def frames():
    topo = NumaTopology(n_domains=3, cores_per_domain=1)
    return FrameManager(topo, frames_per_domain=100)


class TestReserve:
    def test_reserve_preferred_domain(self, frames):
        assert frames.reserve(1, 10) == 1
        assert frames.available(1) == 90

    def test_spill_to_nearest_when_full(self, frames):
        frames.reserve(0, 100)
        got = frames.reserve(0, 10)
        assert got != 0
        assert frames.available(got) == 90

    def test_out_of_memory_raises(self, frames):
        for d in range(3):
            frames.reserve(d, 100)
        with pytest.raises(AllocationError):
            frames.reserve(0, 1)

    def test_nonpositive_count_rejected(self, frames):
        with pytest.raises(AllocationError):
            frames.reserve(0, 0)

    def test_reserve_exact_strict(self, frames):
        frames.reserve_exact(2, 100)
        with pytest.raises(AllocationError):
            frames.reserve_exact(2, 1)

    def test_reserve_exact_does_not_spill(self, frames):
        frames.reserve_exact(0, 100)
        with pytest.raises(AllocationError):
            frames.reserve_exact(0, 1)
        # Other domains untouched.
        assert frames.available(1) == 100


class TestRelease:
    def test_release_returns_frames(self, frames):
        frames.reserve(0, 50)
        frames.release(0, 30)
        assert frames.available(0) == 80

    def test_release_more_than_used_raises(self, frames):
        frames.reserve(0, 10)
        with pytest.raises(AllocationError):
            frames.release(0, 11)

    def test_negative_release_raises(self, frames):
        with pytest.raises(AllocationError):
            frames.release(0, -1)


class TestAccounting:
    def test_total_available(self, frames):
        assert frames.total_available() == 300
        frames.reserve(0, 25)
        assert frames.total_available() == 275

    def test_usage_fraction(self, frames):
        frames.reserve(1, 50)
        frac = frames.usage_fraction()
        np.testing.assert_allclose(frac, [0.0, 0.5, 0.0])

    def test_invalid_capacity(self):
        topo = NumaTopology(n_domains=1, cores_per_domain=1)
        with pytest.raises(AllocationError):
            FrameManager(topo, frames_per_domain=0)
