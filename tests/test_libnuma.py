"""The libnuma-shaped facade."""

import numpy as np
import pytest

from repro.machine import presets
from repro.machine.libnuma import LibNuma
from repro.machine.pagetable import UNBOUND


@pytest.fixture
def numa():
    return LibNuma(presets.generic(n_domains=4, cores_per_domain=2))


class TestQueries:
    def test_num_nodes(self, numa):
        assert numa.numa_num_configured_nodes() == 4

    def test_node_of_cpu(self, numa):
        assert numa.numa_node_of_cpu(0) == 0
        assert numa.numa_node_of_cpu(7) == 3

    def test_distance(self, numa):
        assert numa.numa_distance(1, 1) == 10
        assert numa.numa_distance(0, 2) > 10

    def test_move_pages_query(self, numa):
        seg = numa.numa_alloc_onnode(4 * 4096, node=2)
        addrs = seg.base + np.arange(0, 4 * 4096, 4096)
        np.testing.assert_array_equal(numa.move_pages(addrs), 2)

    def test_move_pages_unbound(self, numa):
        seg = numa.machine.map_segment(1 << 20, 4096)
        assert numa.move_pages(np.array([1 << 20]))[0] == UNBOUND


class TestMigration:
    def test_move_pages_migrates(self, numa):
        seg = numa.numa_alloc_onnode(2 * 4096, node=0)
        addrs = np.array([seg.base, seg.base + 4096])
        new = numa.move_pages(addrs, nodes=[3, 1])
        np.testing.assert_array_equal(new, [3, 1])

    def test_migration_balances_frames(self, numa):
        seg = numa.numa_alloc_onnode(4096, node=0)
        before = numa.machine.frames.total_available()
        numa.move_pages(np.array([seg.base]), nodes=[2])
        assert numa.machine.frames.total_available() == before
        assert numa.machine.frames.used[0] == 0

    def test_length_mismatch(self, numa):
        seg = numa.numa_alloc_onnode(4096, node=0)
        with pytest.raises(ValueError):
            numa.move_pages(np.array([seg.base]), nodes=[1, 2])


class TestAllocation:
    def test_alloc_local(self, numa):
        seg = numa.numa_alloc_local(8 * 4096, cpu=5)  # cpu 5 -> domain 2
        assert set(seg.domains.tolist()) == {2}

    def test_alloc_interleaved(self, numa):
        seg = numa.numa_alloc_interleaved(8 * 4096)
        assert set(seg.domains.tolist()) == {0, 1, 2, 3}

    def test_alloc_interleaved_subset(self, numa):
        seg = numa.numa_alloc_interleaved(8 * 4096, nodes=[1, 3])
        assert set(seg.domains.tolist()) == {1, 3}

    def test_allocations_disjoint(self, numa):
        a = numa.numa_alloc_onnode(3 * 4096, node=0)
        b = numa.numa_alloc_onnode(3 * 4096, node=1)
        assert a.end <= b.base or b.end <= a.base

    def test_numa_free(self, numa):
        seg = numa.numa_alloc_onnode(4096, node=1)
        numa.numa_free(seg)
        assert numa.machine.frames.used[1] == 0
