"""Unit tests for the metrics plane (:mod:`repro.obs.timeseries`)."""

from __future__ import annotations

import math

import pytest

from repro import obs
from repro.analysis import io as analysis_io
from repro.obs import (
    FLAG_EXTRAPOLATED,
    FLAG_FINAL,
    FLAG_ITERATION,
    FLAG_SCHEDULE,
    MetricsRecorder,
    Tracer,
)
from repro.obs.timeseries import FLAG_NAMES, SERIES_FORMAT


class FakeClockTracer(Tracer):
    """Tracer with a manually advanced clock, for exact rate math."""

    def __init__(self) -> None:
        super().__init__()
        self.t = 0
        self.enable()

    def now_ns(self) -> int:
        return self.t


@pytest.fixture
def tracer() -> Tracer:
    tr = Tracer()
    tr.enable()
    return tr


class TestRecording:
    def test_capacity_must_hold_two_rows(self):
        with pytest.raises(ValueError):
            MetricsRecorder(capacity=1)

    def test_sample_snapshots_counters_gauges_and_values(self, tracer):
        tracer.count("engine.steps", 4)
        tracer.gauge("profiler.code_rows", 7)
        mx = MetricsRecorder(capacity=8)
        mx.sample(
            tracer, flags=FLAG_ITERATION, region="compute", iteration=0,
            values={"engine.chunks": 1.5},
        )
        last = mx.last_values()
        assert last["engine.steps"] == 4
        assert last["profiler.code_rows"] == 7
        assert last["engine.chunks"] == 1.5
        assert mx.regions == ["compute"]

    def test_values_override_same_named_counters(self, tracer):
        tracer.count("engine.chunks", 10)
        mx = MetricsRecorder(capacity=8)
        mx.sample(tracer, values={"engine.chunks": 99.0})
        assert mx.last_values()["engine.chunks"] == 99.0

    def test_late_series_is_nan_backfilled(self, tracer):
        mx = MetricsRecorder(capacity=8)
        mx.sample(tracer, values={"a": 1.0})
        mx.sample(tracer, values={"a": 2.0, "late": 5.0})
        doc = mx.export()
        assert math.isnan(doc["series"]["late"][0])
        assert doc["series"]["late"][1] == 5.0
        # And absent-in-this-row cells go back to NaN too.
        mx.sample(tracer, values={"a": 3.0})
        doc = mx.export()
        assert math.isnan(doc["series"]["late"][2])

    def test_ring_wraps_and_counts_dropped(self, tracer):
        mx = MetricsRecorder(capacity=4)
        for i in range(10):
            mx.sample(tracer, iteration=i, values={"v": float(i)})
        assert mx.n_samples == 4
        assert mx.n_total == 10
        assert mx.dropped == 6
        doc = mx.export()
        assert doc["columns"]["iteration"] == [6, 7, 8, 9]
        assert doc["series"]["v"] == [6.0, 7.0, 8.0, 9.0]
        assert doc["dropped"] == 6

    def test_flags_recorded_and_named(self, tracer):
        mx = MetricsRecorder(capacity=8)
        mx.sample(tracer, flags=FLAG_ITERATION | FLAG_SCHEDULE)
        mx.sample(tracer, flags=FLAG_FINAL)
        doc = mx.export()
        assert doc["columns"]["flags"] == [
            FLAG_ITERATION | FLAG_SCHEDULE, FLAG_FINAL
        ]
        # Every defined flag bit has a printable name.
        for flag in (FLAG_ITERATION, FLAG_SCHEDULE, FLAG_FINAL):
            assert flag in FLAG_NAMES


class TestDerivedSeries:
    def test_chunk_rate_is_delta_over_host_time(self):
        tr = FakeClockTracer()
        mx = MetricsRecorder(capacity=8)
        tr.t = 0
        mx.sample(tr, values={"engine.chunks": 0.0})
        tr.t = 1_000_000_000
        mx.sample(tr, values={"engine.chunks": 100.0})
        tr.t = 3_000_000_000
        mx.sample(tr, values={"engine.chunks": 200.0})
        rates = [v for _ts, v in mx.series_values("engine.rate.chunks_per_s")]
        # No rate on the first sample; then 100/1s and 100/2s.
        assert rates == [100.0, 50.0]

    def test_final_sample_reports_whole_window_mean(self):
        tr = FakeClockTracer()
        mx = MetricsRecorder(capacity=8)
        tr.t = 0
        mx.sample(tr, values={"engine.chunks": 0.0})
        tr.t = 1_000_000_000
        mx.sample(tr, values={"engine.chunks": 10.0})
        tr.t = 2_000_000_000
        mx.sample(tr, flags=FLAG_FINAL, values={"engine.chunks": 300.0})
        last = mx.last_values()
        # 300 chunks over the 2 s window, not the delta since the
        # previous sample (which would be a misleading spike).
        assert last["engine.rate.chunks_per_s"] == 150.0

    def test_memo_hit_rate(self, tracer):
        tracer.count("engine.memo.hits", 3)
        tracer.count("engine.memo.misses", 1)
        mx = MetricsRecorder(capacity=8)
        mx.sample(tracer)
        assert mx.last_values()["engine.memo.hit_rate"] == 0.75

    def test_phase_coverage_counts_live_and_extrapolated(self, tracer):
        mx = MetricsRecorder(capacity=8)
        mx.sample(tracer, flags=FLAG_ITERATION)
        mx.sample(
            tracer, flags=FLAG_EXTRAPOLATED,
            values={"engine.phase.extrapolated_iterations": 3.0},
        )
        # 3 extrapolated of 4 total iterations seen so far.
        assert mx.last_values()["engine.phase.coverage_pct"] == 75.0


class TestExportAndAbsorb:
    def test_export_format_tag_matches_io_mirror(self, tracer):
        mx = MetricsRecorder(capacity=4)
        mx.sample(tracer)
        doc = mx.export()
        assert doc["format"] == SERIES_FORMAT
        assert analysis_io.SERIES_FORMAT == SERIES_FORMAT

    def test_absorb_remaps_tracks_shifts_time_preserves_order(self):
        worker = FakeClockTracer()
        wmx = MetricsRecorder(capacity=8)
        worker.t = 5
        wmx.sample(worker, iteration=1, values={"engine.chunks": 7.0})
        worker.t = 6
        wmx.sample(worker, iteration=2, values={"engine.chunks": 9.0})

        parent = FakeClockTracer()
        pmx = MetricsRecorder(capacity=8)
        parent.t = 100
        pmx.sample(parent, iteration=0, values={"engine.chunks": 1.0})
        pmx.absorb(wmx.export(), "w0", shift_ns=1000)

        assert pmx.tracks == ["main", "w0"]
        doc = pmx.export()
        assert doc["columns"]["track"] == [0, 1, 1]
        assert doc["columns"]["ts_ns"] == [100, 1005, 1006]
        assert pmx.series_values("engine.chunks", "w0") == [
            (1005, 7.0), (1006, 9.0)
        ]
        # Absorb is append-only: the parent's own rate bookkeeping must
        # not see foreign chunks (no cross-track rate artifacts).
        assert pmx.series_values("engine.rate.chunks_per_s", "main") == []

    def test_absorb_rides_tracer_export_state(self):
        worker = Tracer()
        worker.enable()
        worker.metrics = MetricsRecorder(capacity=8)
        worker.count("engine.chunks", 5)
        worker.metrics.sample(worker, flags=FLAG_ITERATION)

        parent = Tracer()
        parent.enable()
        parent.metrics = MetricsRecorder(capacity=8)
        parent.absorb(worker.export_state(), "w3")
        assert parent.metrics.tracks == ["main", "w3"]
        assert parent.metrics.last_values("w3")["engine.chunks"] == 5

    def test_absorb_is_skipped_when_parent_has_no_recorder(self):
        worker = Tracer()
        worker.enable()
        worker.metrics = MetricsRecorder(capacity=8)
        worker.metrics.sample(worker)
        parent = Tracer()
        parent.enable()
        parent.absorb(worker.export_state(), "w0")  # must not raise
        assert parent.metrics is None

    def test_deterministic_merge(self):
        def build():
            w1, w2 = FakeClockTracer(), FakeClockTracer()
            m1, m2 = MetricsRecorder(capacity=8), MetricsRecorder(capacity=8)
            w1.t, w2.t = 10, 20
            m1.sample(w1, values={"a": 1.0})
            m2.sample(w2, values={"a": 2.0})
            parent = MetricsRecorder(capacity=8)
            parent.absorb(m1.export(), "w0", shift_ns=0)
            parent.absorb(m2.export(), "w1", shift_ns=0)
            return parent.export()

        assert build() == build()


class TestSeriesRoundTrip:
    def test_save_load_restores_nan_cells(self, tracer, tmp_path):
        mx = MetricsRecorder(capacity=8)
        mx.sample(tracer, values={"a": 1.0})
        mx.sample(tracer, values={"b": 2.0})
        path = analysis_io.save_series(mx.export(), tmp_path / "s.json")
        # Strict JSON on disk: no bare NaN literals.
        assert "NaN" not in path.read_text()
        doc = analysis_io.load_series(path)
        assert math.isnan(doc["series"]["b"][0])
        assert doc["series"]["b"][1] == 2.0
        assert doc["series"]["a"][0] == 1.0
        assert math.isnan(doc["series"]["a"][1])

    def test_save_rejects_foreign_format(self, tmp_path):
        with pytest.raises(ValueError):
            analysis_io.save_series({"format": "nope"}, tmp_path / "s.json")

    def test_loaded_doc_can_be_reabsorbed(self, tracer, tmp_path):
        mx = MetricsRecorder(capacity=8)
        mx.sample(tracer, values={"a": 1.0})
        mx.sample(tracer, values={"b": 2.0})
        path = analysis_io.save_series(mx.export(), tmp_path / "s.json")
        doc = analysis_io.load_series(path)
        back = MetricsRecorder(capacity=8)
        back.absorb(doc, "replay", shift_ns=0)
        assert back.last_values("replay") == {"b": 2.0}
