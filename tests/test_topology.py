"""NUMA topology: CPU/domain mapping and distances."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.machine.topology import NumaTopology


class TestConstruction:
    def test_defaults(self):
        topo = NumaTopology(n_domains=4, cores_per_domain=6)
        assert topo.n_cores == 24
        assert topo.n_cpus == 24
        assert topo.distances.shape == (4, 4)
        assert np.all(np.diag(topo.distances) == 10)

    def test_smt_multiplies_cpus(self):
        topo = NumaTopology(n_domains=4, cores_per_domain=8, smt=4)
        assert topo.n_cpus == 128

    def test_invalid_domain_count(self):
        with pytest.raises(TopologyError):
            NumaTopology(n_domains=0, cores_per_domain=1)

    def test_invalid_core_count(self):
        with pytest.raises(TopologyError):
            NumaTopology(n_domains=1, cores_per_domain=-1)

    def test_asymmetric_distance_rejected(self):
        dist = np.array([[10, 20], [30, 10]])
        with pytest.raises(TopologyError):
            NumaTopology(n_domains=2, cores_per_domain=1, distances=dist)

    def test_wrong_shape_rejected(self):
        with pytest.raises(TopologyError):
            NumaTopology(
                n_domains=3, cores_per_domain=1, distances=np.eye(2) * 10
            )

    def test_local_must_be_minimal(self):
        dist = np.array([[30, 20], [20, 10]])
        with pytest.raises(TopologyError):
            NumaTopology(n_domains=2, cores_per_domain=1, distances=dist)


class TestCpuMapping:
    def test_domain_of_cpu_layout(self):
        topo = NumaTopology(n_domains=4, cores_per_domain=2)
        assert topo.domain_of_cpu(0) == 0
        assert topo.domain_of_cpu(1) == 0
        assert topo.domain_of_cpu(2) == 1
        assert topo.domain_of_cpu(7) == 3

    def test_domain_of_cpu_with_smt(self):
        topo = NumaTopology(n_domains=2, cores_per_domain=2, smt=2)
        # 4 hardware threads per domain.
        assert topo.domain_of_cpu(3) == 0
        assert topo.domain_of_cpu(4) == 1

    def test_domain_of_cpu_vectorized(self):
        topo = NumaTopology(n_domains=2, cores_per_domain=2)
        out = topo.domain_of_cpu(np.array([0, 1, 2, 3]))
        np.testing.assert_array_equal(out, [0, 0, 1, 1])

    def test_out_of_range_cpu(self):
        topo = NumaTopology(n_domains=2, cores_per_domain=2)
        with pytest.raises(TopologyError):
            topo.domain_of_cpu(4)
        with pytest.raises(TopologyError):
            topo.domain_of_cpu(-1)

    def test_cpus_of_domain_roundtrip(self):
        topo = NumaTopology(n_domains=3, cores_per_domain=2, smt=2)
        for d in range(3):
            for cpu in topo.cpus_of_domain(d):
                assert topo.domain_of_cpu(cpu) == d

    def test_cpus_of_domain_invalid(self):
        topo = NumaTopology(n_domains=2, cores_per_domain=2)
        with pytest.raises(TopologyError):
            topo.cpus_of_domain(2)


class TestDistances:
    def test_default_distance_values(self):
        topo = NumaTopology(n_domains=2, cores_per_domain=1)
        assert topo.distance(0, 0) == 10
        assert topo.distance(0, 1) == 20

    def test_is_local(self):
        topo = NumaTopology(n_domains=2, cores_per_domain=2)
        assert topo.is_local(0, 0)
        assert not topo.is_local(0, 1)

    def test_remote_domains_sorted_by_distance(self):
        dist = np.array(
            [[10, 30, 15], [30, 10, 20], [15, 20, 10]], dtype=np.int64
        )
        topo = NumaTopology(n_domains=3, cores_per_domain=1, distances=dist)
        assert topo.remote_domains(0) == [2, 1]

    def test_describe_mentions_counts(self):
        topo = NumaTopology(n_domains=8, cores_per_domain=6, name="test")
        text = topo.describe()
        assert "8" in text and "6" in text
