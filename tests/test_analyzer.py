"""Derived-metric analysis over merged profiles."""

import pytest

from repro.analysis import NumaAnalysis, merge_profiles
from repro.profiler import NumaProfiler
from repro.profiler.metrics import MetricNames
from repro.runtime import ExecutionEngine
from repro.runtime.heap import VariableKind
from repro.machine import presets
from repro.sampling import IBS, MRK



@pytest.fixture
def analysis(toy_archive):
    _, _, arc = toy_archive
    return NumaAnalysis(merge_profiles(arc))


class TestProgramMetrics:
    def test_lpi_positive_and_warranting(self, analysis):
        lpi = analysis.program_lpi()
        assert lpi is not None and lpi > 0.1
        assert analysis.warrants_optimization()

    def test_remote_fraction(self, analysis):
        # 6 of 8 threads remote, but master's init+compute samples are all
        # local: somewhere between 0.4 and 0.8.
        assert 0.4 < analysis.program_remote_fraction() < 0.8

    def test_latency_fractions_consistent(self, analysis):
        assert analysis.total_latency() >= analysis.total_remote_latency() > 0
        assert 0 < analysis.remote_latency_fraction() <= 1

    def test_domain_balance_centralized(self, analysis):
        balance = analysis.domain_balance()
        assert balance[0] == balance.sum()  # everything targets domain 0

    def test_mrk_has_no_lpi(self, small_machine, toy_program):
        prof = NumaProfiler(MRK(max_rate=1e9))
        ExecutionEngine(small_machine, toy_program, 8, monitor=prof).run()
        an = NumaAnalysis(merge_profiles(prof.archive))
        assert an.program_lpi() is None
        assert an.warrants_optimization() is None


class TestVariableRanking:
    def test_hot_variables_single_var(self, analysis):
        hot = analysis.hot_variables()
        assert len(hot) == 1
        assert hot[0].name == "a"
        assert hot[0].remote_latency_share == pytest.approx(1.0)

    def test_variable_summary_fields(self, analysis):
        s = analysis.variable_summary("a")
        assert s.kind is VariableKind.HEAP
        assert s.m_r > s.m_l > 0
        assert s.lpi > 0
        assert len(s.domain_counts) == 4

    def test_kind_share(self, analysis):
        assert analysis.kind_share(VariableKind.HEAP) == pytest.approx(1.0)
        assert analysis.kind_share(VariableKind.STACK) == 0.0


class TestContexts:
    def test_hot_contexts_ranked(self, analysis):
        ranked = analysis.hot_contexts("a")
        assert len(ranked) == 2  # init + compute
        shares = [s for _, s in ranked]
        assert shares == sorted(shares, reverse=True)
        assert sum(shares) == pytest.approx(1.0)

    def test_compute_dominates_remote_latency(self, analysis):
        assert analysis.context_share("a", "compute._omp") > 0.8

    def test_context_share_unknown_region(self, analysis):
        assert analysis.context_share("a", "nothing") == 0.0


class TestRegionMetrics:
    def test_region_metrics_subset_of_total(self, analysis):
        region = analysis.region_metrics("compute._omp")
        total = analysis.merged.totals()
        assert 0 < region[MetricNames.SAMPLES] <= total[MetricNames.SAMPLES]

    def test_region_lpi(self, analysis):
        lpi = analysis.region_lpi("compute._omp")
        assert lpi is not None and lpi > 0

    def test_missing_region_empty(self, analysis):
        assert analysis.region_metrics("ghost") == {}


class TestImbalancedVariables:
    def test_centralized_variable_flagged(self, analysis):
        flagged = analysis.imbalanced_variables()
        assert flagged and flagged[0][0] == "a"
        # Fully centralized on a 4-domain machine: imbalance = 4.
        assert flagged[0][1] == pytest.approx(4.0)

    def test_threshold_filters(self, analysis):
        assert analysis.imbalanced_variables(threshold=5.0) == []

    def test_balanced_variable_not_flagged(self):
        from repro.optim.policies import NumaTuning
        from repro.workloads import PartitionedSweep

        machine = presets.generic(n_domains=4, cores_per_domain=2)
        prof = NumaProfiler(IBS(period=512))
        ExecutionEngine(
            machine,
            PartitionedSweep(
                NumaTuning(parallel_init={"data"}), n_elems=400_000, steps=3
            ),
            8,
            monitor=prof,
        ).run()
        an = NumaAnalysis(merge_profiles(prof.archive))
        assert an.imbalanced_variables(threshold=1.5) == []
