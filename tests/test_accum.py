"""Accumulator tables: growth must preserve rows and sentinel state.

Regression tests for the ``np.empty``-backed :class:`MinMaxTable`: a
growth reallocation copies only the live rows, so freshly exposed
capacity holds stale memory until ``alloc`` re-initializes it — rows
handed out across a growth boundary must still start at the
``[+inf, -inf]`` sentinel, and rows tightened before the growth must
survive the copy bit-for-bit.
"""

import numpy as np

from repro.profiler.accum import MinMaxTable, RowTable


class TestRowTableGrowth:
    def test_grown_rows_are_zero_and_old_rows_survive(self):
        tab = RowTable(3, capacity=4)
        first = tab.alloc(4)
        tab.data[first : first + 4] = np.arange(12.0).reshape(4, 3)
        old_buf = tab.data
        nxt = tab.alloc(2)  # forces reallocation past capacity 4
        assert tab.data is not old_buf, "growth must reallocate"
        np.testing.assert_array_equal(
            tab.data[:4], np.arange(12.0).reshape(4, 3)
        )
        np.testing.assert_array_equal(tab.data[nxt : nxt + 2], 0.0)

    def test_alloc_larger_than_doubled_capacity(self):
        tab = RowTable(2, capacity=2)
        tab.alloc(1)
        tab.data[0] = 7.0
        base = tab.alloc(50)  # need > cap * 2: must size to `need`
        assert base == 1
        assert tab.data.shape[0] >= 51
        np.testing.assert_array_equal(tab.data[0], 7.0)
        np.testing.assert_array_equal(tab.data[1:51], 0.0)

    def test_stale_view_detectable_after_growth(self):
        """Callers must re-read ``data`` after any alloc: a view taken
        before growth points at the dead buffer."""
        tab = RowTable(1, capacity=1)
        row = tab.alloc()
        stale = tab.data[row]
        tab.alloc(8)  # reallocates
        stale[0] = 99.0
        assert tab.data[row, 0] == 0.0  # write landed in the dead buffer


class TestMinMaxTableGrowth:
    def test_grown_rows_get_sentinel(self):
        tab = MinMaxTable(capacity=2)
        first = tab.alloc(2)
        tab.data[first] = (10.0, 20.0)
        tab.data[first + 1] = (5.0, 6.0)
        grown = tab.alloc(3)  # reallocates over np.empty storage
        np.testing.assert_array_equal(tab.data[first], (10.0, 20.0))
        np.testing.assert_array_equal(tab.data[first + 1], (5.0, 6.0))
        np.testing.assert_array_equal(tab.data[grown : grown + 3, 0], np.inf)
        np.testing.assert_array_equal(tab.data[grown : grown + 3, 1], -np.inf)

    def test_every_row_starts_at_sentinel_across_many_growths(self):
        tab = MinMaxTable(capacity=1)
        rows = [tab.alloc(n) for n in (1, 2, 4, 9, 30)]
        for base, n in zip(rows, (1, 2, 4, 9, 30)):
            np.testing.assert_array_equal(tab.data[base : base + n, 0], np.inf)
            np.testing.assert_array_equal(
                tab.data[base : base + n, 1], -np.inf
            )

    def test_min_max_updates_survive_growth(self):
        tab = MinMaxTable(capacity=1)
        r = tab.alloc(1)
        np.minimum.at(tab.data[:, 0], [r], [3.0])
        np.maximum.at(tab.data[:, 1], [r], [8.0])
        tab.alloc(5)
        assert tuple(tab.data[r]) == (3.0, 8.0)
