"""Per-mechanism behaviour: capabilities, event selection, rates, costs."""

import numpy as np
import pytest

from repro.machine import presets
from repro.machine.cache import LEVEL_DRAM, LEVEL_L1, LEVEL_L2
from repro.runtime.callstack import SourceLoc
from repro.runtime.chunks import AccessChunk
from repro.runtime.heap import HeapAllocator
from repro.sampling import DEAR, IBS, MRK, PEBS, PEBSLL, SoftIBS


@pytest.fixture
def machine():
    return presets.generic(n_domains=2, cores_per_domain=2)


@pytest.fixture
def chunk(machine):
    heap = HeapAllocator(machine)
    var = heap.malloc(8 * 10_000, "v", (SourceLoc("main"),))
    return AccessChunk(
        var, var.base + np.arange(10_000) * 8, 80_000, SourceLoc("k", "k.c", 1)
    )


def uniform_inputs(chunk, dram_every=8, dram_latency=300.0):
    """Levels/targets/latencies with a DRAM access every ``dram_every``."""
    n = chunk.n_accesses
    levels = np.full(n, LEVEL_L1, dtype=np.uint8)
    levels[::dram_every] = LEVEL_DRAM
    targets = np.zeros(n, dtype=np.int64)
    lat = np.full(n, 4.0)
    lat[::dram_every] = dram_latency
    return levels, targets, lat


class TestIBS:
    def test_capabilities(self):
        caps = IBS.capabilities
        assert caps.measures_latency
        assert caps.samples_all_instructions
        assert not caps.event_based

    def test_sampling_rate_matches_period(self, machine, chunk):
        mech = IBS(period=1000)
        mech.configure(machine)
        levels, targets, lat = uniform_inputs(chunk)
        batch = mech.select(0, chunk, levels, targets, lat)
        assert batch.n_sampled_instructions == 80
        # Memory samples ~ instruction samples x (accesses / instructions).
        assert batch.n_samples == pytest.approx(80 / 8, abs=6)

    def test_memory_samples_cover_chunk_uniformly(self, machine, chunk):
        mech = IBS(period=64)
        mech.configure(machine)
        levels, targets, lat = uniform_inputs(chunk)
        batch = mech.select(0, chunk, levels, targets, lat)
        # Samples spread over the whole index range, not clustered.
        idx = batch.indices
        assert idx.min() < chunk.n_accesses * 0.1
        assert idx.max() > chunk.n_accesses * 0.9

    def test_no_aliasing_with_access_ratio(self, machine, chunk):
        """Period divisible by instr/access ratio must still yield samples
        (hardware-style low-bit randomization)."""
        mech = IBS(period=1024)  # 1024 % 8 == 0
        mech.configure(machine)
        levels, targets, lat = uniform_inputs(chunk)
        batch = mech.select(0, chunk, levels, targets, lat)
        assert batch.n_samples > 0

    def test_latency_captured(self, machine, chunk):
        mech = IBS(period=100)
        mech.configure(machine)
        batch = mech.select(0, chunk, *uniform_inputs(chunk))
        assert batch.latency_captured


class TestMRK:
    def test_capabilities(self):
        caps = MRK.capabilities
        assert not caps.measures_latency
        assert caps.counts_absolute_events
        assert caps.max_sample_rate_per_sec == 100.0

    def test_samples_only_demand_misses(self, machine, chunk):
        mech = MRK(max_rate=1e12)
        mech.configure(machine)
        levels, targets, lat = uniform_inputs(chunk, dram_latency=300.0)
        batch = mech.select(0, chunk, levels, targets, lat)
        # All events are the DRAM accesses with demand latency.
        assert batch.n_events_total == np.count_nonzero(levels == LEVEL_DRAM)
        assert np.all(levels[batch.indices] == LEVEL_DRAM)

    def test_prefetched_lines_not_marked(self, machine, chunk):
        mech = MRK(max_rate=1e12)
        mech.configure(machine)
        levels, targets, lat = uniform_inputs(chunk)
        lat[levels == LEVEL_DRAM] = 44.0  # prefetched: below demand latency
        batch = mech.select(0, chunk, levels, targets, lat)
        assert batch.n_events_total == 0
        assert batch.n_samples == 0

    def test_rate_cap_limits_samples(self, machine, chunk):
        capped = MRK(max_rate=100.0)
        capped.configure(machine)
        levels, targets, lat = uniform_inputs(chunk)
        batch = capped.select(0, chunk, levels, targets, lat)
        free = MRK(max_rate=1e12)
        free.configure(machine)
        batch_free = free.select(0, chunk, levels, targets, lat)
        assert batch.n_samples < batch_free.n_samples

    def test_rate_cap_budget_accumulates(self, machine, chunk):
        """Fractional budget carries across chunks: many small chunks get
        the same total as one big chunk."""
        mech = MRK(max_rate=5000.0)
        mech.configure(machine)
        levels, targets, lat = uniform_inputs(chunk)
        total = 0
        for _ in range(10):
            total += mech.select(0, chunk, levels, targets, lat).n_samples
        mech2 = MRK(max_rate=50000.0)
        mech2.configure(machine)
        one = mech2.select(0, chunk, levels, targets, lat).n_samples
        assert total == pytest.approx(one, abs=2)


class TestPEBS:
    def test_capabilities(self):
        assert not PEBS.capabilities.precise_ip
        assert not PEBS.capabilities.measures_latency

    def test_correction_cost_dominates(self, machine, chunk):
        corrected = PEBS(period=1000)
        corrected.configure(machine)
        levels, targets, lat = uniform_inputs(chunk)
        batch = corrected.select(0, chunk, levels, targets, lat)
        cost_corrected = corrected.cost_cycles(batch, chunk)

        uncorrected = PEBS(period=1000, skid_correction=False)
        uncorrected.configure(machine)
        batch_u = uncorrected.select(0, chunk, levels, targets, lat)
        cost_plain = uncorrected.cost_cycles(batch_u, chunk)
        assert cost_corrected > cost_plain

    def test_uncorrected_skid_shifts_attribution(self, machine, chunk):
        a = PEBS(period=500, skid_correction=True)
        b = PEBS(period=500, skid_correction=False)
        a.configure(machine, seed=1)
        b.configure(machine, seed=1)
        levels, targets, lat = uniform_inputs(chunk)
        ia = a.select(0, chunk, levels, targets, lat).indices
        ib = b.select(0, chunk, levels, targets, lat).indices
        assert ia.size == ib.size
        assert np.all(ib >= ia)
        assert np.any(ib == ia + 1)


class TestDEAR:
    def test_capabilities(self):
        caps = DEAR.capabilities
        assert not caps.supports_numa_events
        assert not caps.measures_latency

    def test_events_are_non_l1_accesses(self, machine, chunk):
        mech = DEAR(period=1)
        mech.configure(machine)
        n = chunk.n_accesses
        levels = np.full(n, LEVEL_L1, dtype=np.uint8)
        levels[::4] = LEVEL_L2
        levels[::16] = LEVEL_DRAM
        batch = mech.select(0, chunk, levels, np.zeros(n), np.zeros(n))
        assert batch.n_events_total == np.count_nonzero(levels != LEVEL_L1)
        assert np.all(levels[batch.indices] != LEVEL_L1)


class TestPEBSLL:
    def test_capabilities(self):
        caps = PEBSLL.capabilities
        assert caps.measures_latency
        assert caps.counts_absolute_events

    def test_threshold_filters_events(self, machine, chunk):
        mech = PEBSLL(period=1, latency_threshold=100.0)
        mech.configure(machine)
        levels, targets, lat = uniform_inputs(chunk, dram_latency=300.0)
        batch = mech.select(0, chunk, levels, targets, lat)
        assert batch.n_events_total == np.count_nonzero(lat > 100.0)
        assert np.all(lat[batch.indices] > 100.0)

    def test_period_reduces_samples_not_events(self, machine, chunk):
        mech = PEBSLL(period=10, latency_threshold=100.0)
        mech.configure(machine)
        levels, targets, lat = uniform_inputs(chunk)
        batch = mech.select(0, chunk, levels, targets, lat)
        assert batch.n_events_total == 1250
        assert batch.n_samples == 125


class TestSoftIBS:
    def test_capabilities(self):
        caps = SoftIBS.capabilities
        assert caps.needs_thread_binding
        assert not caps.measures_latency

    def test_every_nth_access(self, machine, chunk):
        mech = SoftIBS(period=100)
        mech.configure(machine)
        levels, targets, lat = uniform_inputs(chunk)
        batch = mech.select(0, chunk, levels, targets, lat)
        assert batch.n_samples == 100
        np.testing.assert_array_equal(np.diff(batch.indices), 100)

    def test_per_access_instrumentation_cost(self, machine, chunk):
        mech = SoftIBS(period=10**9)
        mech.configure(machine)
        levels, targets, lat = uniform_inputs(chunk)
        batch = mech.select(0, chunk, levels, targets, lat)
        assert batch.n_samples == 0
        # Cost is nonzero even with zero samples: every access pays.
        assert mech.cost_cycles(batch, chunk) >= chunk.n_accesses * 10

    def test_counts_all_accesses_as_events(self, machine, chunk):
        mech = SoftIBS(period=100)
        mech.configure(machine)
        batch = mech.select(0, chunk, *uniform_inputs(chunk))
        assert batch.n_events_total == chunk.n_accesses


class TestCrossMechanism:
    def test_overhead_ordering_per_access_cost(self, machine, chunk):
        """Soft-IBS must be the most expensive mechanism per executed
        chunk (Table 2's headline ordering)."""
        levels, targets, lat = uniform_inputs(chunk)
        costs = {}
        for mech in (IBS(), MRK(), PEBS(), DEAR(), PEBSLL(), SoftIBS()):
            mech.configure(machine)
            batch = mech.select(0, chunk, levels, targets, lat)
            costs[mech.name] = mech.cost_cycles(batch, chunk)
        assert costs["Soft-IBS"] == max(costs.values())

    def test_independent_thread_state(self, machine, chunk):
        mech = SoftIBS(period=3000)
        mech.configure(machine)
        levels, targets, lat = uniform_inputs(chunk)
        b0 = mech.select(0, chunk, levels, targets, lat)
        b1 = mech.select(1, chunk, levels, targets, lat)
        np.testing.assert_array_equal(b0.indices, b1.indices)
