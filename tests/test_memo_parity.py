"""Golden parity: iteration memoization is invisible in the results.

The memo layer (:mod:`repro.runtime.memo`) caches generated chunk
traces, classification, latency products, and monitor views keyed on
everything they depend on — page-table epoch, fetch levels, contention
inflation. The contract is *bit-identity*: every ``RunResult`` field,
the merged CCTs, per-variable and per-bin metrics, per-thread address
ranges, and the counters must come out exactly equal (``==``, no
tolerances) with the memo on or off, serially and across worker counts,
even when a migration-heavy run bumps the page-table epoch mid-region
or a tiny byte budget forces constant eviction.
"""

import logging

import numpy as np
import pytest

from repro.__main__ import _builders
from repro.analysis.merge import merge_profiles
from repro.machine import presets
from repro.machine.pagetable import PlacementPolicy
from repro.parallel import ParallelEngine, sharding_supported
from repro.profiler import NumaProfiler
from repro.runtime import ExecutionEngine
from repro.runtime.thread import BindingPolicy
from repro.sampling import create_mechanism

SCALE = 0.02
THREADS = 8
PERIOD = 512
#: The paper's four benchmarks (Table 2).
WORKLOADS = ["lulesh", "amg", "blackscholes", "umt"]

_reference_cache: dict[str, tuple] = {}


def _machine_factory():
    return presets.PRESETS["generic"]()


def _monitor_factory(memoize: bool = True):
    return NumaProfiler(create_mechanism("IBS", PERIOD), memoize=memoize)


def _run_serial(workload: str, *, memoize: bool, memo_bytes=None,
                profiler=None):
    build = _builders(SCALE)[workload]
    if profiler is None:
        profiler = _monitor_factory(memoize=memoize)
    engine = ExecutionEngine(
        _machine_factory(), build(), THREADS,
        monitor=profiler, binding=BindingPolicy.COMPACT,
        memoize=memoize, memo_bytes=memo_bytes,
    )
    result = engine.run()
    return result, profiler.archive, engine


def _reference(workload: str):
    """Memo-off serial run: the golden uncached result."""
    if workload not in _reference_cache:
        result, archive, _ = _run_serial(workload, memoize=False)
        _reference_cache[workload] = (result, archive)
    return _reference_cache[workload]


def _cct_flat(cct) -> dict:
    return {
        str(node.path()): dict(node.metrics)
        for node in cct.root.walk()
        if node.metrics
    }


def _assert_results_equal(a, b):
    assert a.program == b.program
    assert a.n_threads == b.n_threads
    assert a.wall_cycles == b.wall_cycles
    assert np.array_equal(a.thread_busy_cycles, b.thread_busy_cycles)
    assert a.total_instructions == b.total_instructions
    assert a.total_accesses == b.total_accesses
    assert a.total_chunks == b.total_chunks
    assert a.dram_accesses == b.dram_accesses
    assert a.remote_dram_accesses == b.remote_dram_accesses
    assert a.monitor_overhead_cycles == b.monitor_overhead_cycles
    assert a.region_wall_cycles == b.region_wall_cycles
    assert np.array_equal(a.domain_dram_requests, b.domain_dram_requests)
    assert np.array_equal(a.domain_traffic, b.domain_traffic)


def _assert_archives_equal(ref_archive, memo_archive):
    assert set(ref_archive.profiles) == set(memo_archive.profiles)
    ms = merge_profiles(ref_archive)
    mm = merge_profiles(memo_archive)
    assert dict(ms.counters) == dict(mm.counters)
    assert _cct_flat(ms.cct) == _cct_flat(mm.cct)
    assert _cct_flat(ms.data_cct) == _cct_flat(mm.data_cct)
    assert set(ms.vars) == set(mm.vars)
    for name in ms.vars:
        vs, vm = ms.vars[name], mm.vars[name]
        assert dict(vs.metrics) == dict(vm.metrics), name
        assert len(vs.bin_metrics) == len(vm.bin_metrics), name
        for i, (bs, bm) in enumerate(zip(vs.bin_metrics, vm.bin_metrics)):
            assert dict(bs) == dict(bm), (name, i)
        assert vs.thread_ranges == vm.thread_ranges, name
        assert len(vs.first_touches) == len(vm.first_touches), name


# ---------------------------------------------------------------------- #
# serial memo-on vs memo-off
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize("workload", WORKLOADS)
def test_serial_memo_matches_no_memo(workload):
    ref_result, ref_archive = _reference(workload)
    memo_result, memo_archive, engine = _run_serial(workload, memoize=True)
    _assert_results_equal(ref_result, memo_result)
    _assert_archives_equal(ref_archive, memo_archive)
    stats = engine.memo.stats()
    assert stats["hits"] > 0, "memoization never engaged"


# ---------------------------------------------------------------------- #
# sharded memo-on vs serial memo-off
# ---------------------------------------------------------------------- #


@pytest.mark.skipif(
    not sharding_supported(), reason="platform cannot fork worker pools"
)
@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("n_workers", [1, 2, 4])
def test_sharded_memo_matches_no_memo(workload, n_workers):
    ref_result, ref_archive = _reference(workload)
    build = _builders(SCALE)[workload]
    par = ParallelEngine(
        _machine_factory, build, THREADS,
        n_workers=n_workers,
        binding=BindingPolicy.COMPACT,
        monitor_factory=_monitor_factory,
        force_sharded=n_workers > 1,
        memoize=True,
    )
    result = par.run()
    _assert_results_equal(ref_result, result)
    _assert_archives_equal(ref_archive, par.archive)


# ---------------------------------------------------------------------- #
# epoch invalidation: migration-heavy run
# ---------------------------------------------------------------------- #


class MigratingProfiler(NumaProfiler):
    """Profiler that migrates a variable between region iterations.

    Models an external actor (OS balancer, online optimizer) rebinding
    pages while a repeated region runs: every iteration boundary flips
    the variable between interleaved and bound placement, bumping the
    page-table epoch mid-region. Cached classification keyed on the old
    epoch must be invalidated — results stay bit-identical to memo-off.
    """

    def __init__(self, mechanism, var_name: str, **kwargs) -> None:
        super().__init__(mechanism, **kwargs)
        self._var_name = var_name
        self.epochs: list[int] = []

    def on_region_exit(self, tid, region, iteration) -> None:
        super().on_region_exit(tid, region, iteration)
        if tid != 0 or region.repeat < 2 or iteration >= region.repeat - 1:
            return
        page_table = self._engine.machine.page_table
        var = self._engine.heap.variables.get(self._var_name)
        if var is None:
            return
        seg = page_table.segment_of_addr(var.base)
        if iteration % 2 == 0:
            page_table.migrate_segment(seg, PlacementPolicy.INTERLEAVE)
        else:
            page_table.migrate_segment(seg, PlacementPolicy.BIND, [0])
        self.epochs.append(page_table.epoch)


def _run_migrating(memoize: bool):
    profiler = MigratingProfiler(
        create_mechanism("IBS", PERIOD), "data", memoize=memoize
    )
    return _run_serial("sweep", memoize=memoize, profiler=profiler)


def test_migration_epoch_invalidation():
    ref_result, ref_archive, _ = _run_migrating(memoize=False)
    memo_result, memo_archive, engine = _run_migrating(memoize=True)
    _assert_results_equal(ref_result, memo_result)
    _assert_archives_equal(ref_archive, memo_archive)

    # The migrations actually bumped the epoch mid-region...
    profiler = engine.monitor
    assert len(profiler.epochs) >= 2
    assert profiler.epochs == sorted(profiler.epochs)

    # ...and the memo re-classified instead of replaying stale variants:
    # a static run of the same workload misses only on first iterations,
    # the migrating run must additionally miss after every epoch bump.
    _, _, static_engine = _run_serial("sweep", memoize=True)
    static_misses = static_engine.memo.stats()["misses"]
    migrating_misses = engine.memo.stats()["misses"]
    assert migrating_misses > static_misses


# ---------------------------------------------------------------------- #
# engine-level schedule (the autotune path): serial and sharded parity
# ---------------------------------------------------------------------- #


def _sweep_schedule():
    """A mid-run rebind on the autotune path (engine-level schedule)."""
    from repro.optim.policies import MigrationStep, PolicySchedule

    schedule = PolicySchedule()
    # Region 1 is the repeated compute region of the sweep; iteration 1
    # leaves a profiled iteration before and iterations after the move.
    schedule.add(
        1, 1, MigrationStep("data", PlacementPolicy.BLOCKWISE, (0, 1, 2, 3))
    )
    return schedule


def _run_scheduled_serial(*, memoize: bool):
    build = _builders(SCALE)["sweep"]
    profiler = _monitor_factory(memoize=memoize)
    engine = ExecutionEngine(
        _machine_factory(), build(), THREADS,
        monitor=profiler, binding=BindingPolicy.COMPACT,
        memoize=memoize, schedule=_sweep_schedule(),
    )
    return engine.run(), profiler.archive, engine


def test_scheduled_migration_memo_parity_serial():
    ref_result, ref_archive, ref_engine = _run_scheduled_serial(memoize=False)
    memo_result, memo_archive, engine = _run_scheduled_serial(memoize=True)
    assert [a.ok for a in ref_engine.applied_actions] == [True]
    assert engine.applied_actions == ref_engine.applied_actions
    _assert_results_equal(ref_result, memo_result)
    _assert_archives_equal(ref_archive, memo_archive)


@pytest.mark.skipif(
    not sharding_supported(), reason="platform cannot fork worker pools"
)
@pytest.mark.parametrize("n_workers", [1, 2, 4])
def test_scheduled_migration_sharded_parity(n_workers):
    ref_result, ref_archive, ref_engine = _run_scheduled_serial(memoize=False)
    build = _builders(SCALE)["sweep"]
    par = ParallelEngine(
        _machine_factory, build, THREADS,
        n_workers=n_workers,
        binding=BindingPolicy.COMPACT,
        monitor_factory=_monitor_factory,
        force_sharded=n_workers > 1,
        memoize=True,
        schedule=_sweep_schedule(),
    )
    result = par.run()
    assert par.applied_actions == ref_engine.applied_actions
    _assert_results_equal(ref_result, result)
    _assert_archives_equal(ref_archive, par.archive)


# ---------------------------------------------------------------------- #
# LRU eviction under a starved budget
# ---------------------------------------------------------------------- #


def test_tiny_budget_evicts_but_results_identical():
    ref_result, ref_archive = _reference("amg")
    result, archive, engine = _run_serial("amg", memoize=True, memo_bytes=1)
    _assert_results_equal(ref_result, result)
    _assert_archives_equal(ref_archive, archive)
    stats = engine.memo.stats()
    assert stats["evictions"] > 0, "1-byte budget must evict"
    assert stats["record_bytes"] <= stats["budget_bytes"] or (
        stats["records"] <= 1
    )


# ---------------------------------------------------------------------- #
# bench-perf workers sweep: underprovisioned host flag
# ---------------------------------------------------------------------- #


def _sweep_with_captured_log(monkeypatch, cpu_count: int):
    """Run an empty workers sweep, capturing ``repro.bench`` records.

    The CLI's ``configure_logging`` turns propagation off on the
    ``repro`` logger, so ``caplog`` (which listens at the root) cannot
    be trusted here — attach a handler to the subsystem logger itself.
    """
    from repro.bench.perf import run_workers_sweep

    monkeypatch.setattr("os.cpu_count", lambda: cpu_count)
    records: list[logging.LogRecord] = []

    class _ListHandler(logging.Handler):
        def emit(self, record):
            records.append(record)

    log = logging.getLogger("repro.bench")
    handler = _ListHandler(level=logging.WARNING)
    old_level = log.level
    log.addHandler(handler)
    log.setLevel(logging.WARNING)
    try:
        sweep = run_workers_sweep(workload_names=())
    finally:
        log.removeHandler(handler)
        log.setLevel(old_level)
    return sweep, [r.getMessage() for r in records]


def test_workers_sweep_flags_underprovisioned_host(monkeypatch):
    sweep, messages = _sweep_with_captured_log(monkeypatch, cpu_count=1)
    assert sweep["host_cpus"] == 1
    assert sweep["underprovisioned"] is True
    assert any("underprovisioned" in m for m in messages)


def test_workers_sweep_not_underprovisioned(monkeypatch):
    sweep, messages = _sweep_with_captured_log(monkeypatch, cpu_count=64)
    assert sweep["underprovisioned"] is False
    assert not any("underprovisioned" in m for m in messages)
