"""Period-p phase extrapolation: parity, sharing, and defenses.

The period-1 contract (``test_phase_parity``) generalizes to period-p
cycles: a deterministic monitor whose selection state cycles with
period p (e.g. DEAR with a period that does not divide the region's
per-iteration access count) produces iteration digests that repeat at
lag p, and the engine folds the cycle's p recordings in slot order —
still bit-identical to full simulation. This file also covers the
defenses and machinery the generalization introduces:

* digest collisions with differing pure deltas must never arm, at any
  period;
* the :class:`PhaseLibrary` lets a region with an identical trace skip
  warmup, with and without sharing staying bit-identical;
* the pay-for-itself disarm state machine (quiesce, probe, epoch
  re-arm);
* ``CacheHierarchy.phase_advance_cycle`` against continued simulation;
* ``union_plan`` combining per-shard readiness vectors.
"""

import copy

import numpy as np
import pytest

from repro.__main__ import _builders
from repro.machine import presets
from repro.machine.cache import CacheConfig, CacheHierarchy
from repro.parallel import ParallelEngine, sharding_supported
from repro.profiler import NumaProfiler
from repro.runtime import ExecutionEngine
from repro.runtime.callstack import SourceLoc
from repro.runtime.chunks import sweep_chunk
from repro.runtime.phase import (
    IterationRecording,
    PhaseDetector,
    union_plan,
)
from repro.runtime.program import ProgramContext, Region, RegionKind
from repro.runtime.thread import BindingPolicy
from repro.sampling import create_mechanism
from repro.workloads.base import WorkloadBase

from tests.test_phase_parity import (
    SCALE,
    THREADS,
    _assert_archives_equal,
    _assert_report_engaged,
    _assert_results_equal,
    _machine_factory,
)


def _dear_factory(period: int):
    """DEAR with a period that does not divide the per-iteration access
    count cycles its carried selection state with period ``period`` —
    deterministic, so extrapolation still runs in exact (ε = 0) mode,
    but only a period-p detector can arm."""
    return NumaProfiler(create_mechanism("DEAR", period), memoize=True)


def _run(workload, *, extrapolate, dear_period, warmup, **kw):
    build = _builders(SCALE)[workload]
    profiler = _dear_factory(dear_period)
    engine = ExecutionEngine(
        _machine_factory(), build(), THREADS,
        monitor=profiler, binding=BindingPolicy.COMPACT,
        memoize=True, extrapolate=extrapolate, extrap_warmup=warmup,
        **kw,
    )
    return engine.run(), profiler.archive, engine


def _max_region_period(report: dict) -> int:
    return max(r["period"] for r in report["regions"].values())


# ---------------------------------------------------------------------- #
# period-p exact parity: serial
# ---------------------------------------------------------------------- #


_ref_cache: dict = {}


def _periodic_ref(workload, dear_period, warmup):
    key = (workload, dear_period, warmup)
    if key not in _ref_cache:
        result, archive, _ = _run(
            workload, extrapolate=False, dear_period=dear_period,
            warmup=warmup,
        )
        _ref_cache[key] = (result, archive)
    return _ref_cache[key]


@pytest.mark.parametrize(
    "workload,dear_period,warmup,period,share",
    [
        ("blackscholes", 4, 6, 2, True),
        ("blackscholes", 4, 6, 2, False),
        ("blackscholes", 3, 6, 3, True),
    ],
)
def test_serial_periodic_extrapolation_exact(workload, dear_period,
                                             warmup, period, share):
    ref_result, ref_archive = _periodic_ref(workload, dear_period, warmup)
    result, archive, engine = _run(
        workload, extrapolate=True, dear_period=dear_period, warmup=warmup,
        extrap_share=share,
    )
    _assert_results_equal(ref_result, result)
    _assert_archives_equal(ref_archive, archive)
    report = engine.phase_report
    _assert_report_engaged(report)
    # The cycling monitor defeats period-1 matching: coverage must come
    # from a genuine period-p plan, on the exact (ε = 0) path.
    assert _max_region_period(report) == period
    assert report["extrapolated_exact"] > 0
    assert report["extrapolated_eps"] == 0
    assert report["epsilon"] == 0.0


def test_period_capped_below_cycle_degrades_to_eps():
    """With --extrap-period 1 the monitor's period-2 cycle is invisible
    to exact matching, but the engine-pure digests still repeat at lag
    1 — the detector must degrade to ε accounting (pure integers exact,
    cycles within the declared ε), never silently diverge."""
    ref_result, _, _ = _run(
        "blackscholes", extrapolate=False, dear_period=4, warmup=6
    )
    result, _, engine = _run(
        "blackscholes", extrapolate=True, dear_period=4, warmup=6,
        extrap_period=1,
    )
    for f in ("total_instructions", "total_accesses", "total_chunks",
              "dram_accesses", "remote_dram_accesses"):
        assert getattr(ref_result, f) == getattr(result, f), f
    assert np.array_equal(
        ref_result.domain_dram_requests, result.domain_dram_requests
    )
    assert np.array_equal(ref_result.domain_traffic, result.domain_traffic)
    report = engine.phase_report
    _assert_report_engaged(report)
    assert _max_region_period(report) <= 1
    assert report["extrapolated_eps"] > 0
    assert report["extrapolated_exact"] == 0
    rel = abs(result.wall_cycles - ref_result.wall_cycles)
    rel /= ref_result.wall_cycles
    assert rel <= max(10.0 * report["epsilon"], 1e-6)


# ---------------------------------------------------------------------- #
# period-p exact parity: sharded
# ---------------------------------------------------------------------- #


@pytest.mark.skipif(
    not sharding_supported(), reason="platform cannot fork worker pools"
)
@pytest.mark.parametrize(
    "n_workers,share",
    [(1, True), (2, True), (4, True), (2, False)],
)
def test_sharded_periodic_extrapolation_exact(n_workers, share):
    ref_result, ref_archive = _periodic_ref("blackscholes", 4, 6)
    build = _builders(SCALE)["blackscholes"]
    par = ParallelEngine(
        _machine_factory, build, THREADS,
        n_workers=n_workers,
        binding=BindingPolicy.COMPACT,
        monitor_factory=lambda: _dear_factory(4),
        force_sharded=True,
        memoize=True,
        extrapolate=True,
        extrap_warmup=6,
        extrap_share=share,
    )
    result = par.run()
    _assert_results_equal(ref_result, result)
    _assert_archives_equal(ref_archive, par.archive)
    report = par.phase_report
    _assert_report_engaged(report)
    assert _max_region_period(report) == 2
    assert report["epsilon"] == 0.0


# ---------------------------------------------------------------------- #
# cross-region phase sharing (PhaseLibrary)
# ---------------------------------------------------------------------- #


class TwinSweep(WorkloadBase):
    """Two back-to-back repeated regions with byte-identical traces.

    Region B's trace content key equals region A's, so with sharing on
    the detector must recognize A's published pattern and arm B after a
    single live iteration instead of a full warmup.
    """

    name = "twin_sweep"
    source_file = "twin.c"

    def __init__(self, tuning=None, *, n_elems=6_000, steps=6):
        super().__init__(tuning)
        self.n_elems = n_elems
        self.steps = steps

    def setup(self, ctx: ProgramContext) -> None:
        self._alloc(
            ctx, "data", self.n_elems * 8,
            (SourceLoc("main"), SourceLoc("malloc")),
        )

    def regions(self, ctx: ProgramContext) -> list[Region]:
        regions = self.make_init_regions(ctx, ["data"], line=10)

        def kernel(ctx: ProgramContext, tid: int):
            data = ctx.var("data")
            lo, hi = ctx.partition(self.n_elems, tid)
            if hi > lo:
                yield sweep_chunk(
                    data, lo, hi - lo,
                    SourceLoc("sweep", self.source_file, 42),
                )

        for name, line in (("compute_a._omp", 40), ("compute_b._omp", 60)):
            regions.append(
                Region(
                    name, RegionKind.PARALLEL, kernel,
                    SourceLoc(name, self.source_file, line),
                    repeat=self.steps,
                )
            )
        return regions


def _run_twins(*, extrapolate, extrap_share=True):
    profiler = NumaProfiler(create_mechanism("DEAR", 1), memoize=True)
    engine = ExecutionEngine(
        _machine_factory(), TwinSweep(), THREADS,
        monitor=profiler, binding=BindingPolicy.COMPACT,
        memoize=True, extrapolate=extrapolate, extrap_share=extrap_share,
    )
    return engine.run(), profiler.archive, engine


def test_phase_library_shares_across_identical_regions():
    ref_result, ref_archive, _ = _run_twins(extrapolate=False)
    res_share, arch_share, eng_share = _run_twins(extrapolate=True)
    res_solo, arch_solo, eng_solo = _run_twins(
        extrapolate=True, extrap_share=False
    )
    # Sharing is an arming shortcut, never an accounting change: both
    # configurations stay bit-identical to full simulation.
    _assert_results_equal(ref_result, res_share)
    _assert_archives_equal(ref_archive, arch_share)
    _assert_results_equal(ref_result, res_solo)
    _assert_archives_equal(ref_archive, arch_solo)

    share = eng_share.phase_report
    solo = eng_solo.phase_report
    _assert_report_engaged(share)
    assert share["library_hits"] >= 1, "sharing never engaged"
    assert solo["library_hits"] == 0
    # The matched region skips warmup: strictly more iterations
    # extrapolated than the no-library run manages.
    b_share = share["regions"]["compute_b._omp"]
    b_solo = solo["regions"]["compute_b._omp"]
    assert b_share["library_hits"] >= 1
    assert (
        b_share["extrapolated_exact"] + b_share["extrapolated_eps"]
        > b_solo["extrapolated_exact"] + b_solo["extrapolated_eps"]
    )


# ---------------------------------------------------------------------- #
# collision defense: same digest, different deltas — must never arm
# ---------------------------------------------------------------------- #


def _rec(value: int, cycles: float = 100.0) -> IterationRecording:
    return IterationRecording(
        ints={"instructions": value},
        requests=np.array([value, 0]),
        traffic=np.array([8 * value, 0]),
        region_cycles={0: cycles},
        elapsed=cycles,
        oh_ops=[],
        cache_delta=({0: 64 * value}, [(0, 1, 0)], {(0, 1, 0): 64 * value}),
    )


def test_digest_collision_differing_deltas_never_arms_period_1():
    det = PhaseDetector(
        "r", warmup=2, max_period=1, monitor_present=False, disarm_after=0
    )
    for i in range(12):
        assert det.begin_iteration(0)
        # Identical digest every iteration (a collision), but the pure
        # integer deltas alternate: the defense comparison must break
        # the streak every time.
        det.end_live_iteration("COLLIDE", None, _rec(1 + i % 2), None, None)
        assert not det.ready, f"armed on a collision at iteration {i}"
    assert det.plan() is None


def test_digest_collision_differing_deltas_never_arms_period_p():
    det = PhaseDetector(
        "r", warmup=2, max_period=2, monitor_present=False, disarm_after=0
    )
    digests = ["A", "B"]
    for i in range(16):
        assert det.begin_iteration(0)
        # Digests repeat at lag 2, but the deltas cycle with period 4:
        # every lag-2 digest match pairs recordings with different
        # integer deltas, so streaks[2] must never grow.
        det.end_live_iteration(
            digests[i % 2], None, _rec(1 + i % 4), None, None
        )
        assert not det.ready, f"armed on a collision at iteration {i}"
    assert det.plan() is None


def test_true_period_2_cycle_arms():
    """Control for the collision tests: when deltas really do repeat at
    lag 2, the same inputs arm at period 2."""
    det = PhaseDetector("r", warmup=2, max_period=2, monitor_present=False)
    for i in range(8):
        det.begin_iteration(0)
        det.end_live_iteration(
            ["A", "B"][i % 2], None, _rec(1 + i % 2), None, None
        )
    assert det.ready_exact
    assert det.plan() == ("exact", 2, False)


# ---------------------------------------------------------------------- #
# pay-for-itself: disarm, probe, re-arm
# ---------------------------------------------------------------------- #


def _noisy(det: PhaseDetector, n: int, epoch: int = 0, base: int = 0) -> int:
    """Feed ``n`` never-matching live iterations; count observed ones."""
    observed = 0
    for i in range(n):
        if det.begin_iteration(epoch):
            observed += 1
            det.end_live_iteration(("noise", base + i), None,
                                   _rec(base + i), None, None)
    return observed


def test_detector_disarms_after_fruitless_windows():
    det = PhaseDetector(
        "r", warmup=2, max_period=2, disarm_after=1, monitor_present=False
    )
    window = det.disarm_window
    assert _noisy(det, window) == window
    assert not det.observing
    assert det.disarms == 1
    # Quiescent: begin_iteration refuses until the next probe window.
    assert not det.begin_iteration(0)


def test_quiescent_detector_probes_and_requiesces():
    det = PhaseDetector(
        "r", warmup=2, max_period=2, disarm_after=1, monitor_present=False
    )
    _noisy(det, det.disarm_window)
    assert not det.observing
    # One full probe cycle: probe_interval silent iterations, then a
    # probe window of live observation that (still noisy) re-quiesces.
    observed = _noisy(det, det.probe_interval + det.disarm_window, base=100)
    assert 0 < observed <= det.disarm_window
    assert det.disarms == 2
    assert not det.observing


def test_probe_window_reconverges_and_rearms():
    det = PhaseDetector(
        "r", warmup=2, max_period=1, disarm_after=1, monitor_present=False
    )
    _noisy(det, det.disarm_window)
    assert not det.observing
    # Burn the quiet iterations until the probe opens, then feed a
    # steady phase: the probe must catch it and stay armed.
    for _ in range(det.probe_interval - 1):
        assert not det.begin_iteration(0)
    for _ in range(4):
        if det.begin_iteration(0):
            det.end_live_iteration("STEADY", None, _rec(7), None, None)
    assert det.observing
    assert det.ready


def test_epoch_change_rearms_quiescent_detector():
    det = PhaseDetector(
        "r", warmup=2, max_period=2, disarm_after=1, monitor_present=False
    )
    _noisy(det, det.disarm_window)
    assert not det.observing
    # A placement mutation bumps the epoch: new behavior, re-observe
    # immediately instead of waiting out the probe interval.
    assert det.begin_iteration(1)
    assert det.observing


# ---------------------------------------------------------------------- #
# cache fast-forward: phase_advance_cycle vs continued simulation
# ---------------------------------------------------------------------- #


def _cycle_slot(cache: CacheHierarchy, slot: int) -> None:
    """One iteration of a 2-slot access cycle (distinct key sets and
    stream advances per slot, one key shared by both slots)."""
    if slot == 0:
        cache._fetch_level(0, 1, 0, 6_400)
        cache._fetch_level(0, 2, 0, 4_096)
    else:
        cache._fetch_level(0, 1, 0, 6_400)
        cache._fetch_level(0, 3, 0, 8_192)
        cache._fetch_level(1, 1, 0, 512)


@pytest.mark.parametrize("n_skip", [1, 2, 4, 5, 9])
def test_phase_advance_cycle_matches_simulation(n_skip):
    cache = CacheHierarchy(CacheConfig())
    for i in range(6):  # warm to a steady cycle
        _cycle_slot(cache, i % 2)
    # Record the live baseline cycle's per-slot deltas (chronological).
    deltas = []
    for slot in (0, 1):
        snap = cache.phase_snapshot()
        _cycle_slot(cache, slot)
        deltas.append(cache.phase_delta(snap))

    simulated = copy.deepcopy(cache)
    for t in range(n_skip):
        _cycle_slot(simulated, t % 2)
    cache.phase_advance_cycle(deltas, n_skip)
    assert cache._stream_pos == simulated._stream_pos
    assert cache._last_visit == simulated._last_visit
    assert cache.state_digest() == simulated.state_digest()


def test_phase_advance_cycle_period_1_delegates():
    cache = CacheHierarchy(CacheConfig())
    for _ in range(4):
        _cycle_slot(cache, 0)
    snap = cache.phase_snapshot()
    _cycle_slot(cache, 0)
    delta = cache.phase_delta(snap)

    simulated = copy.deepcopy(cache)
    for _ in range(7):
        _cycle_slot(simulated, 0)
    cache.phase_advance_cycle([delta], 7)
    assert cache._stream_pos == simulated._stream_pos
    assert cache._last_visit == simulated._last_visit


# ---------------------------------------------------------------------- #
# union_plan: per-shard readiness vectors → union plan
# ---------------------------------------------------------------------- #


def _payload(ready_exact, ready_eps, steady):
    return {
        "ready_exact": ready_exact, "ready_eps": ready_eps,
        "steady": steady, "breaks": 0, "disarmed": False,
        "disarms": 0, "library_hits": 0, "period": 0,
    }


def test_union_plan_smallest_common_period():
    shards = [
        _payload([False, True], [False, False], [0, 4]),
        _payload([True, True], [True, False], [3, 6]),
    ]
    assert union_plan(shards, 2) == ("exact", 2, 4)


def test_union_plan_prefers_exact_over_smaller_eps_period():
    shards = [
        _payload([False, True], [True, True], [2, 4]),
        _payload([False, True], [True, True], [5, 3]),
    ]
    assert union_plan(shards, 2) == ("exact", 2, 3)


def test_union_plan_eps_fallback():
    shards = [
        _payload([False, False], [True, False], [4, 0]),
        _payload([False, False], [True, False], [2, 0]),
    ]
    assert union_plan(shards, 2) == ("eps", 1, 2)


def test_union_plan_requires_every_shard():
    ready = _payload([True], [True], [5])
    assert union_plan([ready, None], 1) is None
    assert union_plan([], 1) is None
    assert union_plan(
        [ready, _payload([False], [False], [0])], 1
    ) is None
