"""End-to-end tests for the run registry and its ``runs`` CLI.

Every ``python -m repro`` invocation archives a content-addressed run
directory (manifest + profile + optional metrics series); ``runs
list/show/diff/timeline`` query the archive. These tests drive the real
CLI into a temporary registry and check the manifests validate, diff
reproduces ``diff_profiles``, and the timeline series agree with the
run's own final counters.

Named ``test_run_registry`` (not ``test_registry``) because a registry
of *workloads* already owns that module name.
"""

from __future__ import annotations

import json

import pytest

from repro.__main__ import _builders, main as repro_main
from repro.machine import presets
from repro.optim.autotune import AutotuneConfig, autotune
from repro.registry import (
    RegistryError,
    RunRegistry,
    build_manifest,
    content_id,
    validate_manifest,
)
from repro.registry.cli import main as runs_main
from repro.runtime.thread import BindingPolicy

SCALE = "0.05"


def _sweep(root, *extra: str) -> int:
    return repro_main([
        "sweep", "--scale", SCALE, "--threads", "8",
        "--extrapolate", "--runs-dir", str(root), *extra,
    ])


@pytest.fixture(scope="module")
def registry_root(tmp_path_factory):
    """Two real CLI runs (compact vs scatter) archived with metrics."""
    root = tmp_path_factory.mktemp("registry") / "runs"
    assert _sweep(root, "--metrics") == 0
    assert _sweep(root, "--metrics", "--binding", "scatter") == 0
    return root


@pytest.fixture(scope="module")
def run_ids(registry_root) -> list[str]:
    return [m["id"] for m in RunRegistry(registry_root).list_runs()]


class TestRecording:
    def test_two_runs_archived_and_manifests_validate(
        self, registry_root, run_ids
    ):
        assert len(run_ids) == 2
        registry = RunRegistry(registry_root)
        for run_id in run_ids:
            doc = json.loads(
                (registry.root / run_id / "manifest.json").read_text()
            )
            assert validate_manifest(doc) == []
            assert doc["workload"] == "sweep"
            assert doc["artifacts"] == {
                "profile": "profile.json", "series": "series.json",
            }

    def test_id_is_content_addressed(self, registry_root, run_ids):
        registry = RunRegistry(registry_root)
        doc = registry.manifest(run_ids[0])
        assert content_id(doc) == doc["id"]

    def test_tampering_breaks_validation(self, registry_root, run_ids):
        doc = RunRegistry(registry_root).manifest(run_ids[0])
        doc["headline"]["lpi_numa"] = 0.0
        assert any("content hash" in p for p in validate_manifest(doc))

    def test_headline_matches_series_final_row(
        self, registry_root, run_ids
    ):
        """The manifest headline is the FINAL metrics row, archived."""
        registry = RunRegistry(registry_root)
        for run_id in run_ids:
            head = registry.manifest(run_id)["headline"]
            series = registry.load_series(run_id)

            def last(name):
                vals = [
                    v for i, v in enumerate(series["series"][name])
                    if series["columns"]["track"][i] == 0 and v == v
                    and v is not None
                ]
                return vals[-1]

            assert last("engine.chunks") == head["chunks"]
            assert last("engine.accesses") == head["accesses"]
            assert last("engine.memo.hit_rate") == head["memo_hit_rate"]
            assert last("engine.rate.chunks_per_s") == head["chunks_per_s"]
            assert (
                last("engine.phase.coverage_pct")
                == head["phase_coverage_pct"]
            )

    def test_prefix_resolution(self, registry_root, run_ids):
        registry = RunRegistry(registry_root)
        full = run_ids[0]
        assert registry.resolve(full[:6]) == full
        with pytest.raises(RegistryError, match="no run matching"):
            registry.resolve("zzzz")
        with pytest.raises(RegistryError, match="ambiguous"):
            registry.resolve("")  # empty prefix matches both runs

    def test_no_save_records_nothing(self, tmp_path):
        root = tmp_path / "runs"
        assert _sweep(root, "--no-save") == 0
        assert not root.exists()

    def test_run_without_metrics_has_no_series(self, tmp_path):
        root = tmp_path / "runs"
        assert _sweep(root) == 0
        registry = RunRegistry(root)
        (run_id,) = [m["id"] for m in registry.list_runs()]
        assert registry.load_profile(run_id) is not None
        with pytest.raises(RegistryError, match="no series artifact"):
            registry.load_series(run_id)


class TestRunsCli:
    def _runs(self, registry_root, *argv: str) -> int:
        return runs_main(["--runs-dir", str(registry_root), *argv])

    def test_list_renders_both_runs(self, registry_root, run_ids, capsys):
        assert self._runs(registry_root, "list") == 0
        out = capsys.readouterr().out
        for run_id in run_ids:
            assert run_id in out
        assert "2 run(s)" in out

    def test_list_ids_is_script_friendly(
        self, registry_root, run_ids, capsys
    ):
        assert self._runs(registry_root, "list", "--ids") == 0
        assert capsys.readouterr().out.split() == run_ids

    def test_show_prints_manifest_sections(
        self, registry_root, run_ids, capsys
    ):
        registry = RunRegistry(registry_root)
        # Runs sort by (created, id); find the scatter run explicitly.
        scatter = next(
            m["id"] for m in registry.list_runs()
            if m["config"]["binding"] == "scatter"
        )
        assert self._runs(registry_root, "show", scatter[:6]) == 0
        out = capsys.readouterr().out
        assert f"run {scatter} (profile)" in out
        assert "binding" in out and "scatter" in out
        assert "headline:" in out

    def test_show_json_round_trips(self, registry_root, run_ids, capsys):
        assert self._runs(registry_root, "show", run_ids[0], "--json") == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc == RunRegistry(registry_root).manifest(run_ids[0])

    def test_diff_matches_diff_profiles(
        self, registry_root, run_ids, capsys
    ):
        from repro.analysis.diff import diff_profiles
        from repro.analysis.merge import merge_profiles

        registry = RunRegistry(registry_root)
        expected = diff_profiles(
            merge_profiles(registry.load_profile(run_ids[0])),
            merge_profiles(registry.load_profile(run_ids[1])),
        )
        assert self._runs(
            registry_root, "diff", run_ids[0], run_ids[1], "--json"
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["before"] == run_ids[0]
        assert doc["after"] == run_ids[1]
        assert doc["lpi_before"] == expected.lpi_before
        assert doc["lpi_after"] == expected.lpi_after
        assert doc["remote_before"] == expected.remote_before
        assert doc["remote_after"] == expected.remote_after

    def test_diff_text_carries_headline_deltas(
        self, registry_root, run_ids, capsys
    ):
        assert self._runs(
            registry_root, "diff", run_ids[0], run_ids[1]
        ) == 0
        out = capsys.readouterr().out
        assert f"runs diff: {run_ids[0]} -> {run_ids[1]}" in out
        assert "lpi" in out.lower()

    def test_timeline_series_match_final_counters(
        self, registry_root, run_ids, capsys
    ):
        """The rendered timeline is the run's own series, verifiably."""
        registry = RunRegistry(registry_root)
        head = registry.manifest(run_ids[0])["headline"]
        assert self._runs(
            registry_root, "timeline", run_ids[0],
            "--series", "engine.chunks,engine.memo.hit_rate", "--json",
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["run"] == run_ids[0]
        assert doc["n_samples"] > 0
        chunks = [v for _ts, v in doc["series"]["engine.chunks"]]
        assert chunks[-1] == head["chunks"]
        assert chunks == sorted(chunks)  # cumulative counter
        hits = [v for _ts, v in doc["series"]["engine.memo.hit_rate"]]
        assert hits[-1] == head["memo_hit_rate"]

    def test_timeline_sparkline_render(self, registry_root, run_ids, capsys):
        assert self._runs(registry_root, "timeline", run_ids[0]) == 0
        out = capsys.readouterr().out
        assert f"timeline {run_ids[0]}" in out
        assert "engine.memo.hit_rate" in out
        assert any(ch in out for ch in "▁▂▃▄▅▆▇█")

    def test_timeline_csv_export(
        self, registry_root, run_ids, capsys, tmp_path
    ):
        csv_path = tmp_path / "series.csv"
        assert self._runs(
            registry_root, "timeline", run_ids[0], "--csv", str(csv_path)
        ) == 0
        lines = csv_path.read_text().splitlines()
        assert lines[0] == "series,ts_ns,value"
        assert len(lines) > 1

    def test_unknown_run_is_a_clean_error(self, registry_root, capsys):
        assert self._runs(registry_root, "show", "zzzz") == 2
        assert "error:" in capsys.readouterr().err


class TestBuildManifest:
    def test_minimal_manifest_validates(self):
        doc = build_manifest(
            kind="profile", workload="toy", machine="generic",
            config={"mechanism": "DEAR"}, flags={"metrics": False},
            host_wall_s=0.5, headline={"chunks": 1},
        )
        # record() stamps these; content_id covers neither.
        doc["created"] = "2026-01-01T00:00:00Z"
        doc["id"] = content_id(doc)
        assert validate_manifest(doc) == []

    def test_autotune_kind_requires_refs(self):
        doc = build_manifest(
            kind="autotune", workload="toy", machine="generic",
            config={}, flags={}, host_wall_s=0.1, headline={},
        )
        doc["id"] = content_id(doc)
        assert any("refs" in p for p in validate_manifest(doc))


class TestAutotuneRegistration:
    @pytest.fixture(scope="class")
    def tuned(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("autotune") / "runs"
        cfg = AutotuneConfig(
            machine_factory=presets.PRESETS["generic"],
            program_factory=_builders(0.05)["sweep"],
            n_threads=8,
            binding=BindingPolicy.COMPACT,
            mechanism_name="IBS",
            period=512,
            seed=3,
            runs_dir=root,
        )
        return autotune(cfg), RunRegistry(root)

    def test_records_baseline_tuned_and_loop(self, tuned):
        report, registry = tuned
        runs = registry.list_runs()
        assert sorted(m["kind"] for m in runs) == [
            "autotune", "profile", "profile",
        ]
        assert set(report.run_ids) == {"baseline", "tuned", "autotune"}
        loop = registry.manifest(report.run_ids["autotune"])
        # The loop manifest references both profile runs by id.
        assert loop["refs"]["baseline"] == report.run_ids["baseline"]
        assert loop["refs"]["tuned"] == report.run_ids["tuned"]
        for ref in loop["refs"].values():
            assert registry.manifest(ref)["kind"] == "profile"

    def test_runs_diff_reproduces_report_deltas(self, tuned, capsys):
        report, registry = tuned
        assert runs_main([
            "--runs-dir", str(registry.root), "diff",
            report.run_ids["baseline"], report.run_ids["tuned"], "--json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["lpi_before"] == report.lpi_before
        assert doc["lpi_after"] == report.lpi_after
        assert doc["remote_before"] == report.remote_before
        assert doc["remote_after"] == report.remote_after

    def test_report_text_names_the_run_ids(self, tuned):
        report, _registry = tuned
        text = report.render()
        assert report.run_ids["baseline"] in text
        assert report.run_ids["tuned"] in text
