"""Advice -> tuning transforms."""


from repro.analysis.advisor import Action, Advice, Recommendation
from repro.analysis.patterns import AccessPattern, PatternReport
from repro.machine.pagetable import PlacementPolicy
from repro.optim import apply_advice


def rec(name, action, domains=None):
    report = PatternReport(AccessPattern.BLOCKED, 0.1, 1.0, 0.0, 8)
    return Recommendation(
        var_name=name,
        action=action,
        pattern=report,
        scoped_to=None,
        first_touch_paths={},
        blockwise_domains=domains or [],
        remote_cost_share=0.5,
    )


def advice(recs, worth=True):
    return Advice(
        program="p", lpi=0.5 if worth else 0.01, worth_optimizing=worth,
        recommendations=recs, rationale="",
    )


class TestApplyAdvice:
    def test_blockwise_uses_advisor_domains(self):
        tuning = apply_advice(
            advice([rec("v", Action.BLOCKWISE, [3, 2, 1, 0])]), 4
        )
        spec = tuning.spec_for("v")
        assert spec.policy is PlacementPolicy.BLOCKWISE
        assert spec.domains == (3, 2, 1, 0)
        # The paper's fix changes the first-touch code: init parallelized.
        assert tuning.inits_in_parallel("v")

    def test_blockwise_defaults_to_all_domains(self):
        tuning = apply_advice(advice([rec("v", Action.BLOCKWISE)]), 4)
        assert tuning.spec_for("v").domains == (0, 1, 2, 3)

    def test_interleave(self):
        tuning = apply_advice(advice([rec("v", Action.INTERLEAVE)]), 8)
        assert tuning.spec_for("v").policy is PlacementPolicy.INTERLEAVE

    def test_parallel_init(self):
        tuning = apply_advice(advice([rec("v", Action.PARALLEL_INIT)]), 4)
        assert tuning.inits_in_parallel("v")
        assert tuning.spec_for("v") is None

    def test_restructure_regroups_and_parallelizes(self):
        tuning = apply_advice(advice([rec("v", Action.RESTRUCTURE)]), 4)
        assert tuning.is_regrouped("v")
        assert tuning.inits_in_parallel("v")

    def test_none_action_untouched(self):
        tuning = apply_advice(advice([rec("v", Action.NONE)]), 4)
        assert tuning.spec_for("v") is None
        assert not tuning.inits_in_parallel("v")

    def test_not_worth_optimizing_is_baseline(self):
        tuning = apply_advice(
            advice([rec("v", Action.BLOCKWISE)], worth=False), 4
        )
        assert tuning.placement == {}
        assert tuning.parallel_init == set()
