"""The domain traffic matrix and its view."""

import numpy as np
import pytest

from repro.analysis import traffic_matrix_view
from repro.machine import presets
from repro.optim.policies import NumaTuning
from repro.runtime import ExecutionEngine
from repro.workloads import PartitionedSweep


def run(tuning=None):
    machine = presets.generic(n_domains=4, cores_per_domain=2)
    return ExecutionEngine(
        machine, PartitionedSweep(tuning, n_elems=400_000, steps=3), 8
    ).run()


class TestTrafficMatrix:
    def test_shape_and_conservation(self):
        res = run()
        assert res.domain_traffic.shape == (4, 4)
        assert res.domain_traffic.sum() == res.dram_accesses
        # Column sums equal per-domain request counts.
        np.testing.assert_array_equal(
            res.domain_traffic.sum(axis=0), res.domain_dram_requests
        )

    def test_centralized_fills_one_column(self):
        res = run()
        matrix = res.domain_traffic
        assert matrix[:, 0].sum() == matrix.sum()
        # Every accessor domain contributes (all threads run chunks).
        assert np.count_nonzero(matrix[:, 0]) == 4

    def test_colocated_is_diagonal(self):
        res = run(NumaTuning(parallel_init={"data"}))
        matrix = res.domain_traffic
        assert np.trace(matrix) == pytest.approx(matrix.sum(), rel=0.02)

    def test_off_diagonal_equals_remote(self):
        res = run()
        matrix = res.domain_traffic
        off_diag = matrix.sum() - np.trace(matrix)
        assert off_diag == res.remote_dram_accesses


class TestTrafficView:
    def test_render_centralized(self):
        res = run()
        text = traffic_matrix_view(res)
        assert "rows: accessor" in text
        assert "cross-domain" in text
        # Four accessor rows.
        assert sum(1 for l in text.splitlines() if l.strip().startswith("d")) >= 4

    def test_local_share_reported(self):
        res = run(NumaTuning(parallel_init={"data"}))
        text = traffic_matrix_view(res)
        assert "local (diagonal) share: 10" in text or "local (diagonal) share: 9" in text
