"""Deferred (batched) profiler vs. the per-chunk immediate path.

``NumaProfiler(deferred=True)`` — the default — accumulates metrics in
flat numpy tables and flushes once at ``on_run_end``. These tests pin
the golden contract: for every mechanism, a deferred run produces the
*identical* archive a ``deferred=False`` run does — same RunResult
timing, same CCT node sets and totals, same per-variable, per-bin, and
per-range data-centric records, same counters. Integer-valued metrics
must match exactly; accumulated latency sums are compared at 1e-9
relative tolerance (bincount accumulation vs. sequential addition round
differently in the last ulp).
"""

import numpy as np
import pytest

from repro.machine import presets
from repro.profiler import NumaProfiler
from repro.runtime import ExecutionEngine
from repro.sampling import DEAR, IBS, MRK, PEBS, PEBSLL, SoftIBS
from tests.conftest import ToyProgram

#: Metrics whose accumulation order may differ between the two paths.
LAT_METRICS = {"LAT_TOTAL", "LAT_REMOTE"}

MECHS = {
    "ibs": lambda: IBS(period=512),
    "pebs": lambda: PEBS(period=512),
    "pebs_noskid": lambda: PEBS(period=512, skid_correction=False),
    "pebs_ll": lambda: PEBSLL(period=3),
    "dear": lambda: DEAR(period=5),
    "mrk": lambda: MRK(period=4),
    "soft_ibs": lambda: SoftIBS(period=64),
}


def profiled_run(make_mech, deferred):
    machine = presets.generic(n_domains=4, cores_per_domain=2)
    profiler = NumaProfiler(make_mech(), deferred=deferred)
    result = ExecutionEngine(
        machine, ToyProgram(), 8, monitor=profiler
    ).run()
    return result, profiler.archive


def cct_items(cct):
    """{path: metrics} for every annotated node of a CCT."""
    return {
        node.path(): dict(node.metrics)
        for node in cct.root.walk()
        if node.metrics
    }


def assert_metrics_equal(a: dict, b: dict):
    assert a.keys() == b.keys()
    for key, va in a.items():
        if key in LAT_METRICS:
            assert va == pytest.approx(b[key], rel=1e-9)
        else:
            assert va == b[key]


@pytest.mark.parametrize("name", list(MECHS))
def test_deferred_archive_matches_immediate(name):
    res_d, arc_d = profiled_run(MECHS[name], True)
    res_i, arc_i = profiled_run(MECHS[name], False)

    # Timing identical: mechanism costs are computed with the same
    # arithmetic on both paths, so overhead and wall cycles agree exactly.
    assert res_d.wall_cycles == res_i.wall_cycles
    assert res_d.monitor_overhead_cycles == res_i.monitor_overhead_cycles
    assert res_d.total_instructions == res_i.total_instructions
    assert res_d.dram_accesses == res_i.dram_accesses
    assert res_d.remote_dram_accesses == res_i.remote_dram_accesses
    np.testing.assert_array_equal(
        res_d.thread_busy_cycles, res_i.thread_busy_cycles
    )

    assert arc_d.profiles.keys() == arc_i.profiles.keys()
    for tid, pd in arc_d.profiles.items():
        pi = arc_i.profiles[tid]
        assert dict(pd.counters) == dict(pi.counters)

        # Code-centric and augmented CCTs: identical node sets + metrics.
        for which in ("cct", "data_cct"):
            items_d = cct_items(getattr(pd, which))
            items_i = cct_items(getattr(pi, which))
            assert items_d.keys() == items_i.keys()
            for path in items_i:
                assert_metrics_equal(items_d[path], items_i[path])

        # Data-centric records: per-variable metrics, bins, ranges.
        assert pd.vars.keys() == pi.vars.keys()
        for vname, rec_d in pd.vars.items():
            rec_i = pi.vars[vname]
            assert rec_d.n_bins == rec_i.n_bins
            assert_metrics_equal(dict(rec_d.metrics), dict(rec_i.metrics))
            for bin_d, bin_i in zip(rec_d.bins, rec_i.bins):
                assert_metrics_equal(dict(bin_d.metrics), dict(bin_i.metrics))
            assert rec_d.ranges.keys() == rec_i.ranges.keys()
            for path, arr_i in rec_i.ranges.items():
                np.testing.assert_array_equal(rec_d.ranges[path], arr_i)

        # First-touch records are attributed immediately on both paths.
        assert len(pd.first_touches) == len(pi.first_touches)


def test_deferred_cct_totals_match():
    """Acceptance invariant, spelled out: identical whole-tree totals."""
    _, arc_d = profiled_run(MECHS["ibs"], True)
    _, arc_i = profiled_run(MECHS["ibs"], False)
    for tid, pd in arc_d.profiles.items():
        pi = arc_i.profiles[tid]
        for metric in ("SAMPLES", "NUMA_MATCH", "NUMA_MISMATCH", "INSTR",
                       "SAMPLED_INSTR"):
            assert pd.cct.total(metric) == pi.cct.total(metric)
        assert pd.cct.total("LAT_TOTAL") == pytest.approx(
            pi.cct.total("LAT_TOTAL"), rel=1e-9
        )
