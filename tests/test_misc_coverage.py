"""Remaining small-surface coverage: segment helpers, classification
objects, timeline buckets, and engine edge conditions."""

import numpy as np
import pytest

from repro.machine import presets
from repro.machine.cache import LEVEL_DRAM, LEVEL_L1, ChunkClassification
from repro.machine.pagetable import PlacementPolicy
from repro.profiler.timeline import TimelineBucket
from repro.runtime import ExecutionEngine
from repro.runtime.callstack import SourceLoc
from repro.runtime.chunks import compute_chunk
from repro.runtime.program import Region, RegionKind


class TestSegmentHelpers:
    def test_page_index(self):
        machine = presets.generic()
        seg = machine.map_segment(8 * 4096, 4 * 4096)
        assert seg.page_index(8) == 0
        np.testing.assert_array_equal(
            seg.page_index(np.array([9, 11])), [1, 3]
        )

    def test_bound_fraction(self):
        machine = presets.generic()
        seg = machine.map_segment(0, 4 * 4096)
        assert seg.bound_fraction() == 0.0
        machine.page_table.touch_pages(np.array([0, 1]), cpu=0)
        assert seg.bound_fraction() == 0.5
        seg2 = machine.map_segment(
            1 << 20, 4 * 4096, PlacementPolicy.BIND, domains=[1]
        )
        assert seg2.bound_fraction() == 1.0


class TestChunkClassification:
    def test_n_fetches(self):
        levels = np.array([LEVEL_L1, LEVEL_DRAM, LEVEL_L1, LEVEL_DRAM],
                          dtype=np.uint8)
        cls = ChunkClassification(levels, True, 128)
        assert cls.n_fetches == 2


class TestTimelineBucket:
    def test_remote_fraction_empty(self):
        assert TimelineBucket("r", 0).remote_fraction() == 0.0

    def test_remote_fraction(self):
        b = TimelineBucket("r", 0)
        b.metrics["NUMA_MATCH"] = 1.0
        b.metrics["NUMA_MISMATCH"] = 3.0
        assert b.remote_fraction() == pytest.approx(0.75)


class TestEngineEdges:
    def test_empty_region_kernel(self, small_machine):
        class Empty:
            name = "empty"

            def setup(self, ctx):
                pass

            def regions(self, ctx):
                def kernel(ctx, tid):
                    return iter(())

                return [
                    Region("r._omp", RegionKind.PARALLEL, kernel,
                           SourceLoc("r._omp"))
                ]

        res = ExecutionEngine(small_machine, Empty(), 4).run()
        assert res.wall_cycles == 0.0
        assert res.total_accesses == 0

    def test_program_with_no_regions(self, small_machine):
        class NoRegions:
            name = "none"

            def setup(self, ctx):
                pass

            def regions(self, ctx):
                return []

        res = ExecutionEngine(small_machine, NoRegions(), 2).run()
        assert res.wall_cycles == 0.0

    def test_single_thread_parallel_region(self, small_machine):
        class One:
            name = "one"

            def setup(self, ctx):
                pass

            def regions(self, ctx):
                def kernel(ctx, tid):
                    yield compute_chunk(100, SourceLoc("k"))

                return [
                    Region("r._omp", RegionKind.PARALLEL, kernel,
                           SourceLoc("r._omp"))
                ]

        res = ExecutionEngine(small_machine, One(), 1).run()
        assert res.total_instructions == 100


class TestLibNumaArena:
    def test_many_allocations_never_collide(self):
        from repro.machine.libnuma import LibNuma

        numa = LibNuma(presets.generic())
        segs = [numa.numa_alloc_onnode(1000, node=0) for _ in range(50)]
        starts = sorted((s.base, s.end) for s in segs)
        for (a0, a1), (b0, b1) in zip(starts[:-1], starts[1:]):
            assert a1 <= b0
