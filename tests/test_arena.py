"""Unit tests for the shared-memory columnar arena (owner/reader/codec)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import arena
from repro.runtime.arena import (
    ArenaReader,
    ArrayRef,
    ShmArena,
    decode_payload,
    encode_payload,
    force_unlink,
    list_segments,
    run_token,
    shm_available,
    worker_segment,
)

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="host has no POSIX shared memory"
)


@pytest.fixture
def owned():
    """An arena plus reader, both torn down (and leak-checked) at exit."""
    token = run_token()
    a = ShmArena(token)
    r = ArenaReader()
    yield a, r, token
    r.close()
    a.destroy()
    assert [n for n in list_segments() if n.startswith(token)] == []


class TestArena:
    def test_put_get_roundtrip(self, owned):
        a, r, _ = owned
        src = np.arange(10_000, dtype=np.int64)
        ref = a.put(src)
        assert ArrayRef.is_ref(ref)
        got = r.get(ref)
        assert np.array_equal(got, src)
        assert not got.flags.writeable

    def test_alloc_array_fills_in_place(self, owned):
        a, r, _ = owned
        view, ref = a.alloc_array(4_096, np.float64)
        view[:] = 2.5
        got = r.get(ref)
        assert got.shape == (4_096,)
        assert float(got.sum()) == 2.5 * 4_096

    def test_reset_reuses_segments(self, owned):
        a, r, _ = owned
        a.put(np.zeros(1_000, dtype=np.int64))
        mapped = a.pool_bytes()
        for _ in range(16):
            a.reset()
            a.put(np.zeros(1_000, dtype=np.int64))
        assert a.pool_bytes() == mapped  # rewound, not regrown

    def test_large_allocation_grows_segment(self, owned):
        a, r, _ = owned
        big = np.zeros(arena.DEFAULT_SEGMENT_BYTES // 8 + 1, dtype=np.int64)
        got = r.get(a.put(big))
        assert got.nbytes == big.nbytes

    def test_pools_are_independent(self, owned):
        a, r, _ = owned
        ref_keep = a.put(np.arange(512, dtype=np.int64), pool=("gen", 0))
        a.put(np.zeros(512, dtype=np.int64), pool="round")
        a.reset("round")  # must not disturb the gen pool
        assert np.array_equal(r.get(ref_keep), np.arange(512))

    def test_release_pool_unlinks_only_that_pool(self, owned):
        a, r, token = owned
        a.put(np.zeros(512, dtype=np.int64), pool=("gen", 0))
        keep = a.put(np.arange(512, dtype=np.int64), pool="round")
        before = {n for n in list_segments() if n.startswith(token)}
        a.release_pool(("gen", 0))
        after = {n for n in list_segments() if n.startswith(token)}
        assert after < before
        # A fresh reader can still see the surviving pool's bytes.
        r2 = ArenaReader()
        try:
            assert np.array_equal(r2.get(keep), np.arange(512))
        finally:
            r2.close()

    def test_destroy_is_idempotent_and_rejects_alloc(self, owned):
        a, _, _ = owned
        a.put(np.zeros(512, dtype=np.int64))
        a.destroy()
        a.destroy()
        with pytest.raises(RuntimeError):
            a.alloc(64)


class TestCodec:
    def test_identity_without_arena(self):
        payload = {"x": np.arange(4), "y": [1, (2, 3)]}
        assert encode_payload(payload, None) is payload
        dec = decode_payload(payload, None)
        assert dec["x"] is payload["x"]  # arrays pass through untouched
        assert dec["y"] == payload["y"]

    def test_small_arrays_stay_inline(self, owned):
        a, r, _ = owned
        small = np.arange(4, dtype=np.int64)  # < MIN_SHM_ARRAY_BYTES
        enc = encode_payload({"s": small}, a)
        assert enc["s"] is small

    def test_nested_structures_roundtrip(self, owned):
        a, r, _ = owned
        payload = {
            "cols": {
                "step": np.arange(1_000, dtype=np.int64),
                "names": ["a", "b"],
            },
            "tuples": (np.ones(1_000), 7, "str"),
            "list": [np.zeros(1_000, dtype=np.int32)],
        }
        dec = decode_payload(encode_payload(payload, a), r)
        assert np.array_equal(dec["cols"]["step"], payload["cols"]["step"])
        assert dec["cols"]["names"] == ["a", "b"]
        assert np.array_equal(dec["tuples"][0], payload["tuples"][0])
        assert dec["tuples"][1:] == (7, "str")
        assert np.array_equal(dec["list"][0], payload["list"][0])

    def test_decode_without_reader_raises(self, owned):
        a, _, _ = owned
        ref = a.put(np.arange(1_000, dtype=np.int64))
        with pytest.raises(RuntimeError):
            decode_payload(ref, None)


class TestCleanup:
    def test_force_unlink_reaps_abandoned_segments(self):
        token = run_token()
        name = worker_segment(token, 0)
        # Simulate a worker that died owning segments: create, don't
        # destroy (suppress the GC safety net by dropping the pools).
        a = ShmArena(name)
        a.put(np.arange(1_000, dtype=np.int64))
        a._pools.clear()
        a._closed = True
        assert any(n.startswith(name) for n in list_segments())
        removed = force_unlink(name)
        assert removed >= 1
        assert not any(n.startswith(name) for n in list_segments())

    def test_force_unlink_on_missing_is_noop(self):
        assert force_unlink(worker_segment(run_token(), 3)) == 0

    def test_worker_segment_names_are_deterministic(self):
        assert worker_segment("tok", 2) == "tok-w2"
        assert worker_segment("tok", 2) == worker_segment("tok", 2)
