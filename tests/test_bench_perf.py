"""Tests for the bench-perf microbenchmark runner and regression check."""

from __future__ import annotations

import json

from repro.bench import perf
from tests.conftest import ToyProgram


def fake_doc(rates: dict) -> dict:
    """Build a minimal ``bench-perf/v1`` doc from workload -> chunks/s."""
    doc: dict = {"schema": perf.SCHEMA, "workloads": {}, "totals": {}}
    total = 0.0
    for name, cps in rates.items():
        doc["workloads"][name] = {
            "engine_only": {"chunks_per_s": cps},
            "monitored": {"chunks_per_s": cps / 2.0},
        }
        total += cps
    doc["totals"] = {
        "engine_only": {"chunks_per_s": total},
        "monitored": {"chunks_per_s": total / 2.0},
    }
    return doc


class TestCompare:
    def test_no_regression_within_threshold(self):
        res = perf.compare(
            fake_doc({"w": 95.0}), fake_doc({"w": 100.0}), threshold=0.2
        )
        assert res["ok"]
        assert res["regressions"] == []
        assert res["speedups"]["workloads"]["w"]["engine_only"] == 0.95

    def test_regression_flagged_below_threshold(self):
        res = perf.compare(
            fake_doc({"w": 70.0}), fake_doc({"w": 100.0}), threshold=0.2
        )
        assert not res["ok"]
        assert any("w/engine_only" in r for r in res["regressions"])
        assert any("totals/engine_only" in r for r in res["regressions"])

    def test_speedup_is_never_a_regression(self):
        res = perf.compare(
            fake_doc({"w": 500.0}), fake_doc({"w": 100.0}), threshold=0.2
        )
        assert res["ok"]
        assert res["speedups"]["totals"]["engine_only"] == 5.0

    def test_workload_missing_from_baseline_is_skipped(self):
        res = perf.compare(
            fake_doc({"w": 100.0, "new": 1.0}),
            fake_doc({"w": 100.0}),
            threshold=0.2,
        )
        assert res["ok"]
        assert "new" not in res["speedups"]["workloads"]
        assert "workloads/new" in res["missing"]

    def test_stripped_baseline_compares_shared_keys_only(self):
        """A baseline predating newer schema fields (phase breakdowns,
        per-mode entries) must compare what it has and warn on the rest."""
        baseline = fake_doc({"w": 100.0})
        # Strip fields as an old-schema file would lack them.
        del baseline["workloads"]["w"]["monitored"]
        del baseline["totals"]["monitored"]
        res = perf.compare(fake_doc({"w": 95.0}), baseline, threshold=0.2)
        assert res["ok"]
        assert res["speedups"]["workloads"]["w"]["engine_only"] == 0.95
        assert res["speedups"]["workloads"]["w"]["monitored"] is None
        assert res["speedups"]["totals"]["monitored"] is None
        assert "totals/monitored/chunks_per_s" in res["missing"]
        assert "workloads/w/monitored/chunks_per_s" in res["missing"]

    def test_zero_baseline_rate_is_missing_not_crash(self):
        baseline = fake_doc({"w": 0.0})
        res = perf.compare(fake_doc({"w": 95.0}), baseline, threshold=0.2)
        assert res["ok"]
        assert res["speedups"]["workloads"]["w"]["engine_only"] is None

    def test_missing_keys_are_deduped_and_sorted(self):
        baseline = fake_doc({"a": 100.0, "b": 100.0})
        for entry in baseline["workloads"].values():
            del entry["monitored"]
        del baseline["totals"]["monitored"]
        res = perf.compare(
            fake_doc({"a": 95.0, "b": 95.0}), baseline, threshold=0.2
        )
        assert res["missing"] == sorted(set(res["missing"]))

    def test_sub_floor_wall_is_unreliable_not_regression(self):
        """A huge throughput drop measured over a few milliseconds of
        wall must be flagged unreliable, never gated as a regression."""
        current = fake_doc({"w": 5.0})
        baseline = fake_doc({"w": 100.0})
        for doc in (current, baseline):
            for entry in doc["workloads"].values():
                for mode in entry.values():
                    mode["wall_s"] = perf.MIN_RELIABLE_WALL_S / 10.0
            for mode in doc["totals"].values():
                mode["wall_s"] = perf.MIN_RELIABLE_WALL_S / 10.0
        res = perf.compare(current, baseline, threshold=0.2)
        assert res["ok"]
        assert res["regressions"] == []
        assert any(
            "unreliable: wall below floor" in line
            for line in res["unreliable"]
        )
        # The ratio is still recorded for humans reading the JSON.
        assert res["speedups"]["workloads"]["w"]["engine_only"] == 0.05

    def test_one_sub_floor_side_is_enough_to_skip_gating(self):
        current = fake_doc({"w": 5.0})
        baseline = fake_doc({"w": 100.0})
        # Only the baseline walls are below the floor.
        for entry in baseline["workloads"].values():
            for mode in entry.values():
                mode["wall_s"] = 0.001
        for mode in baseline["totals"].values():
            mode["wall_s"] = 0.001
        for entry in current["workloads"].values():
            for mode in entry.values():
                mode["wall_s"] = 1.0
        for mode in current["totals"].values():
            mode["wall_s"] = 1.0
        res = perf.compare(current, baseline, threshold=0.2)
        assert res["ok"]
        assert res["unreliable"]

    def test_above_floor_walls_still_gate(self):
        current = fake_doc({"w": 70.0})
        baseline = fake_doc({"w": 100.0})
        for doc in (current, baseline):
            for entry in doc["workloads"].values():
                for mode in entry.values():
                    mode["wall_s"] = 1.0
            for mode in doc["totals"].values():
                mode["wall_s"] = 1.0
        res = perf.compare(current, baseline, threshold=0.2)
        assert not res["ok"]
        assert res["unreliable"] == []


class TestMissingWarnings:
    def test_groups_same_suffix_across_workloads(self):
        lines = perf.missing_warnings([
            "workloads/a/monitored/chunks_per_s",
            "workloads/b/monitored/chunks_per_s",
            "totals/monitored/chunks_per_s",
        ])
        assert len(lines) == 2
        # totals/* keys pass through individually (tests and humans
        # grep for the full path)...
        assert any(
            "baseline lacks totals/monitored/chunks_per_s" in ln
            for ln in lines
        )
        # ...while per-workload keys collapse to one line per suffix.
        grouped = next(ln for ln in lines if "2 workloads" in ln)
        assert "monitored/chunks_per_s" in grouped
        assert "a, b" in grouped

    def test_single_workload_keeps_full_path(self):
        lines = perf.missing_warnings(["workloads/w/monitored/chunks_per_s"])
        assert lines == [
            "  warning: baseline lacks workloads/w/monitored/chunks_per_s; "
            "comparison skipped"
        ]

    def test_duplicates_collapse(self):
        key = "workloads/w/monitored/chunks_per_s"
        assert perf.missing_warnings([key, key]) == perf.missing_warnings(
            [key]
        )

    def test_empty_missing_is_silent(self):
        assert perf.missing_warnings([]) == []


class TestRunPerf:
    def test_document_shape(self):
        doc = perf.run_perf(
            preset="magny_cours",
            threads=8,
            workloads={"toy": lambda: ToyProgram(8_000, steps=1)},
        )
        assert doc["schema"] == perf.SCHEMA
        entry = doc["workloads"]["toy"]
        for mode in ("engine_only", "monitored"):
            assert entry[mode]["chunks"] > 0
            assert entry[mode]["chunks_per_s"] > 0
            assert entry[mode]["accesses_per_s"] > 0
        assert "overhead_pct" in entry["monitored"]
        assert doc["totals"]["engine_only"]["chunks"] == entry["engine_only"][
            "chunks"
        ]

    def test_metrics_overhead_measured_per_workload(self):
        doc = perf.run_perf(
            preset="magny_cours",
            threads=8,
            workloads={"toy": lambda: ToyProgram(8_000, steps=2)},
            metrics=True,
        )
        mt = doc["workloads"]["toy"]["metrics"]
        assert mt["n_samples"] > 0
        assert mt["per_sample_s"] > 0
        assert mt["estimated_overhead_s"] > 0
        tot = doc["totals"]["metrics"]
        assert tot["n_samples"] == mt["n_samples"]
        assert tot["limit_pct"] == perf.METRICS_OVERHEAD_LIMIT_PCT
        assert tot["estimated_overhead_pct"] >= 0

    def test_render_mentions_every_workload(self):
        doc = perf.run_perf(
            preset="magny_cours",
            threads=8,
            workloads={"toy": lambda: ToyProgram(8_000, steps=1)},
        )
        table = perf.render(doc)
        assert "toy" in table
        assert "TOTAL" in table


class TestMain:
    def test_writes_json_and_self_compares(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        rc = perf.main(
            [
                "--scale", "0.01",
                "--threads", "8",
                "--output", str(out),
                "--baseline", str(tmp_path / "missing.json"),
            ]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == perf.SCHEMA
        assert set(doc["workloads"]) == {"lulesh", "amg", "blackscholes", "umt"}

        # Second run compared against the first: throughput cannot drop
        # by 95% between back-to-back identical runs.
        out2 = tmp_path / "bench2.json"
        rc = perf.main(
            [
                "--scale", "0.01",
                "--threads", "8",
                "--output", str(out2),
                "--baseline", str(out),
                "--threshold", "0.95",
            ]
        )
        assert rc == 0
        doc2 = json.loads(out2.read_text())
        assert doc2["comparison"]["ok"]
        assert "vs baseline" in capsys.readouterr().out

    def test_config_mismatched_baseline_is_ignored(self, tmp_path, capsys):
        """A baseline recorded under a different configuration must not be
        used for regression comparison."""
        base = tmp_path / "base.json"
        rc = perf.main(
            ["--scale", "0.01", "--threads", "8", "--output", str(base)]
        )
        assert rc == 0
        out = tmp_path / "bench.json"
        rc = perf.main(
            [
                "--scale", "0.01",
                "--threads", "4",  # different config than the baseline
                "--output", str(out),
                "--baseline", str(base),
            ]
        )
        assert rc == 0
        printed = capsys.readouterr().out
        assert "ignoring baseline" in printed
        assert "comparison" not in json.loads(out.read_text())

    def test_check_mode_records_and_compares(self, tmp_path, capsys,
                                             monkeypatch):
        """--check uses the smoke scale/threshold and exits 0 against a
        fresh self-recorded baseline.

        Timing is injected: every ``perf`` timing site reads a
        deterministic clock that advances a fixed tick per call, so both
        runs report identical walls and the comparison is exact. The old
        version ratioed real sub-10ms smoke walls, which flaked whenever
        the host scheduler stretched one of them. The overhead
        estimators are stubbed for the same reason — under a fixed-tick
        clock their microbenchmarks measure the tick, not the code.
        """
        t = [0.0]

        def fake_clock():
            t[0] += 0.0625  # power of two: exact float arithmetic
            return t[0]

        monkeypatch.setattr(perf, "_clock", fake_clock)
        monkeypatch.setattr(
            perf, "measure_noop_overhead",
            lambda **kw: {
                "wall_s": 0.0625, "instrumentation_sites": 1_000,
                "per_site_s": 1e-9, "estimated_overhead_s": 1e-6,
                "overhead_pct": 0.001,
            },
        )
        monkeypatch.setattr(
            perf, "measure_metrics_overhead",
            lambda *a, **kw: {
                "wall_s": 0.0625, "n_samples": 10, "per_sample_s": 1e-9,
                "estimated_overhead_s": 1e-8,
                "estimated_overhead_pct": 0.001,
                "measured_delta_pct": 0.0,
            },
        )
        base = tmp_path / "smoke_base.json"
        rc = perf.main(
            [
                "--check",
                "--scale", "0.01",
                "--threads", "8",
                "--output", str(base),
                "--baseline", str(tmp_path / "missing.json"),
            ]
        )
        assert rc == 0
        assert "no baseline found" in capsys.readouterr().out
        out = tmp_path / "smoke.json"
        rc = perf.main(
            [
                "--check",
                "--scale", "0.01",
                "--threads", "8",
                "--output", str(out),
                "--baseline", str(base),
            ]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["comparison"]["threshold"] == perf.SMOKE_THRESHOLD
        assert doc["comparison"]["ok"]
        # Identical deterministic walls and a deterministic simulation:
        # every recorded ratio is exactly 1.0, run after run.
        assert doc["comparison"]["speedups"]["totals"]["engine_only"] == 1.0
        assert doc["comparison"]["speedups"]["totals"]["monitored"] == 1.0

    def test_check_mode_gates_noop_overhead(self, tmp_path, capsys):
        out = tmp_path / "smoke.json"
        rc = perf.main(
            [
                "--check",
                "--scale", "0.01",
                "--threads", "8",
                "--output", str(out),
                "--baseline", str(tmp_path / "missing.json"),
            ]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        noop = doc["noop_overhead"]
        assert noop["instrumentation_sites"] > 0
        assert noop["overhead_pct"] < noop["limit_pct"]
        assert "disabled-telemetry estimate" in capsys.readouterr().out

    def test_stripped_baseline_does_not_crash_main(self, tmp_path, capsys):
        """End-to-end: comparing against a baseline that predates the
        per-mode totals must print n/a + warnings, not TypeError."""
        base = tmp_path / "base.json"
        rc = perf.main(
            ["--scale", "0.01", "--threads", "8", "--output", str(base)]
        )
        assert rc == 0
        doc = json.loads(base.read_text())
        del doc["totals"]["monitored"]
        for entry in doc["workloads"].values():
            del entry["monitored"]
        base.write_text(json.dumps(doc))

        out = tmp_path / "bench.json"
        rc = perf.main(
            [
                "--scale", "0.01",
                "--threads", "8",
                "--output", str(out),
                "--baseline", str(base),
                "--threshold", "0.95",
            ]
        )
        assert rc == 0
        printed = capsys.readouterr().out
        assert "monitored n/a" in printed
        assert "warning: baseline lacks totals/monitored" in printed

    def test_workers_sweep_flag(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        rc = perf.main(
            [
                "--scale", "0.01",
                "--threads", "8",
                "--workers-sweep",
                "--output", str(out),
                "--baseline", str(tmp_path / "missing.json"),
            ]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        sweep = doc["workers_sweep"]
        assert sweep["host_cpus"] >= 1
        if sweep["sharding_supported"]:
            for name in perf.SWEEP_WORKLOADS:
                entry = sweep["workloads"][name]
                assert entry["serial"]["chunks_per_s"] > 0
                for n in perf.SWEEP_WORKERS:
                    w = entry[f"workers_{n}"]
                    assert w["chunks"] == entry["serial"]["chunks"]
                    assert w["speedup_vs_serial"] > 0
            assert "workers sweep" in capsys.readouterr().out

    def test_phase_breakdown_flag(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        rc = perf.main(
            [
                "--scale", "0.01",
                "--threads", "8",
                "--phase-breakdown",
                "--output", str(out),
                "--baseline", str(tmp_path / "missing.json"),
            ]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        for entry in doc["workloads"].values():
            pb = entry["phase_breakdown"]
            assert pb["by_category"]["engine"] > 0
            assert 0.0 < pb["coverage"] <= 1.1
        assert "phase breakdown" in capsys.readouterr().out
