"""Features the paper lists as future work (Section 10), implemented here.

1. Full monitoring of stack variables (instead of manual promotion).
5. First-touch pinpointing for static variables (page protection at load
   time).
(Future work #3, time-varying traces, is covered by test_timeline.py.)
"""


from repro.machine import presets
from repro.profiler import NumaProfiler
from repro.runtime import ExecutionEngine
from repro.runtime.callstack import SourceLoc
from repro.runtime.chunks import sweep_chunk
from repro.runtime.heap import VariableKind
from repro.runtime.program import Region, RegionKind
from repro.sampling import IBS
from repro.workloads.base import WorkloadBase


class MixedKinds(WorkloadBase):
    """One variable of each kind: heap, static, and stack."""

    name = "mixed"
    source_file = "mixed.c"
    N = 100_000

    def setup(self, ctx):
        self._alloc(ctx, "h", self.N * 8, (SourceLoc("main"), SourceLoc("malloc")))
        ctx.heap.static_alloc(self.N * 8, "g")
        ctx.heap.stack_alloc(self.N * 8, "s", tid=0)

    def regions(self, ctx):
        def kernel(ctx, tid):
            for name in ("h", "g", "s"):
                var = ctx.var(name)
                lo, hi = ctx.partition(self.N, tid)
                if hi > lo:
                    yield sweep_chunk(
                        var, lo, hi - lo,
                        SourceLoc(f"use_{name}", "mixed.c", 10),
                    )

        return self.make_init_regions(ctx, ["h", "g", "s"]) + [
            Region("use._omp", RegionKind.PARALLEL, kernel, SourceLoc("use._omp"))
        ]


def run(protect_static=False, protect_stack=False):
    machine = presets.generic(n_domains=4, cores_per_domain=2)
    profiler = NumaProfiler(
        IBS(period=512),
        protect_static=protect_static,
        protect_stack=protect_stack,
    )
    ExecutionEngine(machine, MixedKinds(), 8, monitor=profiler).run()
    return profiler.archive


class TestStackMonitoring:
    """Future work #1: detailed analysis of stack variables."""

    def test_stack_variable_fully_attributed(self):
        arc = run()
        rec = arc.thread(5).vars["s"]
        assert rec.kind is VariableKind.STACK
        assert rec.metrics["NUMA_MISMATCH"] > 0
        assert rec.range_for() is not None

    def test_stack_first_touch_when_enabled(self):
        arc = run(protect_stack=True)
        touched = {
            ft.var_name for p in arc.profiles.values()
            for ft in p.first_touches
        }
        assert "s" in touched

    def test_stack_not_protected_by_default(self):
        arc = run()
        touched = {
            ft.var_name for p in arc.profiles.values()
            for ft in p.first_touches
        }
        assert "s" not in touched


class TestStaticFirstTouch:
    """Future work #5: protect static variables' pages at load time."""

    def test_static_first_touch_when_enabled(self):
        arc = run(protect_static=True)
        records = [
            ft for p in arc.profiles.values() for ft in p.first_touches
            if ft.var_name == "g"
        ]
        assert records
        # Pinpointed in the serial init by the master thread.
        assert records[0].tid == 0
        assert any("init_g" == f.func for f in records[0].path)

    def test_static_attribution_always_available(self):
        arc = run()
        rec = arc.thread(3).vars["g"]
        assert rec.kind is VariableKind.STATIC
        assert rec.alloc_path[0].func == "<static data>"

    def test_heap_protection_independent(self):
        arc = run(protect_static=True, protect_stack=True)
        touched = {
            ft.var_name for p in arc.profiles.values()
            for ft in p.first_touches
        }
        assert touched == {"h", "g", "s"}
