"""Machine presets: the five Table 1 architectures."""

import pytest

from repro.machine import presets


class TestMagnyCours:
    def test_structure(self):
        m = presets.magny_cours()
        assert m.n_domains == 8
        assert m.n_cpus == 48
        assert m.topology.smt == 1

    def test_intra_package_dies_are_closer(self):
        m = presets.magny_cours()
        assert m.topology.distance(0, 1) < m.topology.distance(0, 2)

    def test_remote_ratio_exceeds_paper_threshold(self):
        # Paper Section 2: remote accesses >30% higher latency.
        assert presets.magny_cours().latency_model.remote_ratio() > 1.3


class TestPower7:
    def test_structure(self):
        m = presets.power7()
        assert m.n_domains == 4
        assert m.n_cpus == 128  # 4 sockets x 8 cores x SMT4
        assert m.topology.smt == 4

    def test_interleave_penalty_configured(self):
        # The POWER7 regression mechanism must be active.
        assert presets.power7().latency_model.interleave_stream_penalty > 1.0


class TestIntelPresets:
    @pytest.mark.parametrize(
        "factory", [presets.xeon_harpertown, presets.itanium2, presets.ivy_bridge]
    )
    def test_eight_threads_two_domains(self, factory):
        m = factory()
        assert m.n_cpus == 8
        assert m.n_domains == 2

    def test_remote_ratios(self):
        for factory in (
            presets.xeon_harpertown, presets.itanium2, presets.ivy_bridge
        ):
            assert factory().latency_model.remote_ratio() > 1.3


class TestGenericAndRegistry:
    def test_generic_configurable(self):
        m = presets.generic(n_domains=2, cores_per_domain=3, smt=2)
        assert m.n_cpus == 12

    def test_registry_covers_table1_hosts(self):
        for name in (
            "magny_cours", "power7", "xeon_harpertown", "itanium2", "ivy_bridge"
        ):
            assert name in presets.PRESETS
            machine = presets.PRESETS[name]()
            assert machine.n_domains >= 2

    def test_presets_are_fresh_instances(self):
        a, b = presets.magny_cours(), presets.magny_cours()
        assert a is not b
        assert a.page_table is not b.page_table
