"""Machine facade: wiring, allocation passthrough, access pipeline."""

import numpy as np
import pytest

from repro.machine import presets
from repro.machine.cache import LEVEL_DRAM
from repro.machine.machine import Machine
from repro.machine.pagetable import PlacementPolicy
from repro.machine.topology import NumaTopology


@pytest.fixture
def machine():
    return presets.generic(n_domains=4, cores_per_domain=2)


class TestConstruction:
    def test_counts(self, machine):
        assert machine.n_cpus == 8
        assert machine.n_domains == 4

    def test_invalid_clock(self):
        topo = NumaTopology(n_domains=1, cores_per_domain=1)
        with pytest.raises(ValueError):
            Machine(topology=topo, ghz=0)

    def test_invalid_cpi(self):
        topo = NumaTopology(n_domains=1, cores_per_domain=1)
        with pytest.raises(ValueError):
            Machine(topology=topo, base_cpi=-1)

    def test_describe(self, machine):
        assert "NUMA domains" in machine.describe()


class TestAllocation:
    def test_map_unmap_roundtrip(self, machine):
        seg = machine.map_segment(0x1000, 8192, label="v")
        assert machine.page_table.segment_of_addr(0x1000) is seg
        machine.unmap_segment(seg)
        assert len(machine.page_table.segments) == 0


class TestAccessPipeline:
    def test_classify_returns_domains(self, machine):
        seg = machine.map_segment(
            0, 4 * 4096, PlacementPolicy.BIND, domains=[2]
        )
        addrs = np.arange(0, 4096, 8, dtype=np.int64)
        cls, targets = machine.classify_accesses(addrs, cpu=0, seg=seg)
        assert np.all(targets == 2)
        assert cls.levels.shape == addrs.shape

    def test_dram_request_counts(self, machine):
        seg = machine.map_segment(
            0, 4 * 4096, PlacementPolicy.BIND, domains=[1]
        )
        addrs = np.arange(0, 4 * 4096, 8, dtype=np.int64)
        cls, targets = machine.classify_accesses(addrs, cpu=0, seg=seg)
        req = machine.dram_request_counts(cls.levels, targets)
        assert req[1] == np.count_nonzero(cls.levels == LEVEL_DRAM)
        assert req.sum() == req[1]

    def test_access_latency_remote_exceeds_local(self, machine):
        seg_local = machine.map_segment(
            0, 4096, PlacementPolicy.BIND, domains=[0]
        )
        seg_remote = machine.map_segment(
            1 << 20, 4096, PlacementPolicy.BIND, domains=[3]
        )
        infl = np.ones(4)
        a_local = np.arange(0, 4096, 8, dtype=np.int64)
        a_remote = (1 << 20) + np.arange(0, 4096, 8, dtype=np.int64)
        cls_l, t_l = machine.classify_accesses(a_local, 0, seg_local)
        cls_r, t_r = machine.classify_accesses(a_remote, 0, seg_remote)
        lat_l = machine.access_latency(cls_l.levels, t_l, 0, infl)
        lat_r = machine.access_latency(cls_r.levels, t_r, 0, infl)
        assert lat_r.sum() > lat_l.sum()

    def test_reset_caches(self, machine):
        seg = machine.map_segment(0, 4096, PlacementPolicy.BIND, domains=[0])
        addrs = np.arange(0, 4096, 8, dtype=np.int64)
        machine.classify_accesses(addrs, 0, seg)
        machine.reset_caches()
        cls, _ = machine.classify_accesses(addrs, 0, seg)
        # Cold again: fetches go to DRAM.
        assert np.any(cls.levels == LEVEL_DRAM)

    def test_cycles_to_seconds(self, machine):
        ghz = machine.ghz
        assert machine.cycles_to_seconds(ghz * 1e9) == pytest.approx(1.0)
