"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import WORKLOADS, build_parser, main


class TestParser:
    def test_all_workloads_registered(self):
        assert set(WORKLOADS) == {
            "lulesh", "amg", "blackscholes", "umt", "sweep", "hotspot"
        }

    def test_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.machine is None
        assert not args.optimize

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_mechanism_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--mechanism", "XYZ"])


class TestMain:
    def test_sweep_end_to_end(self, capsys):
        rc = main(["sweep", "--threads", "8", "--machine", "generic"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "lpi_NUMA" in out
        assert "address-centric view" in out
        assert "advisor:" in out

    def test_optimize_flag(self, capsys):
        rc = main(["sweep", "--threads", "8", "--optimize"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "optimized run" in out

    def test_scatter_binding_and_mrk(self, capsys):
        rc = main([
            "sweep", "--threads", "8", "--mechanism", "MRK",
            "--binding", "scatter",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        # MRK path: no latency metric.
        assert "lpi_NUMA unavailable" in out

    def test_var_override(self, capsys):
        rc = main(["sweep", "--threads", "4", "--var", "data"])
        assert rc == 0
        assert "address-centric view — data" in capsys.readouterr().out
