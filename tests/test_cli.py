"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import WORKLOADS, build_parser, main


class TestParser:
    def test_all_workloads_registered(self):
        assert set(WORKLOADS) == {
            "lulesh", "amg", "blackscholes", "umt", "sweep", "hotspot"
        }

    def test_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.machine is None
        assert not args.optimize

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_mechanism_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--mechanism", "XYZ"])


class TestMain:
    def test_sweep_end_to_end(self, capsys):
        rc = main(["sweep", "--threads", "8", "--machine", "generic"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "lpi_NUMA" in out
        assert "address-centric view" in out
        assert "advisor:" in out

    def test_optimize_flag(self, capsys):
        rc = main(["sweep", "--threads", "8", "--optimize"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "optimized run" in out

    def test_scatter_binding_and_mrk(self, capsys):
        rc = main([
            "sweep", "--threads", "8", "--mechanism", "MRK",
            "--binding", "scatter",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        # MRK path: no latency metric.
        assert "lpi_NUMA unavailable" in out

    def test_var_override(self, capsys):
        rc = main(["sweep", "--threads", "4", "--var", "data"])
        assert rc == 0
        assert "address-centric view — data" in capsys.readouterr().out

    def test_scale_flag(self, capsys):
        rc = main(["sweep", "--threads", "4", "--scale", "0.05"])
        assert rc == 0
        assert "scale 0.05" in capsys.readouterr().out

    def test_extrapolate_flag_prints_phase_summary(self, capsys):
        rc = main(["sweep", "--threads", "8", "--scale", "0.1",
                   "--extrapolate"])
        assert rc == 0
        assert "phase extrapolation:" in capsys.readouterr().out

    def test_exact_flag_excludes_extrapolate(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--extrapolate", "--exact"])

    def test_exact_run_prints_no_phase_summary(self, capsys):
        rc = main(["sweep", "--threads", "8", "--scale", "0.1", "--exact"])
        assert rc == 0
        assert "phase extrapolation:" not in capsys.readouterr().out


class TestErrors:
    def test_unknown_machine_is_one_clean_line(self, capsys):
        rc = main(["sweep", "--machine", "nope"])
        assert rc == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: unknown machine preset")
        assert "Traceback" not in captured.err

    @pytest.mark.parametrize(
        "bad", ["0", "-1", "nan", "-inf", "inf", "1e18"]
    )
    def test_bad_scale_is_one_clean_line(self, capsys, bad):
        """Non-positive, NaN, and absurd --scale values die with a
        one-line usage error (exit 2) instead of a deep traceback from
        workload setup."""
        rc = main(["sweep", f"--scale={bad}"])
        assert rc == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: --scale")
        assert "Traceback" not in captured.err
        assert captured.err.count("\n") == 1

    def test_bad_extrap_warmup_is_one_clean_line(self, capsys):
        rc = main(["sweep", "--extrapolate", "--extrap-warmup", "0"])
        assert rc == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: --extrap-warmup")
        assert captured.err.count("\n") == 1


class TestTelemetryFlags:
    def test_trace_stats_jsonl(self, tmp_path, capsys):
        from repro import obs
        from repro.obs import validate_chrome_trace

        trace = tmp_path / "out.trace.json"
        jsonl = tmp_path / "out.jsonl"
        rc = main([
            "sweep", "--threads", "8", "--scale", "0.1",
            "--trace", str(trace), "--trace-jsonl", str(jsonl), "--stats",
        ])
        assert rc == 0
        assert validate_chrome_trace(trace) == []
        assert jsonl.stat().st_size > 0
        out = capsys.readouterr().out
        assert "telemetry summary — spans" in out
        assert "engine.run" in out
        assert "sampling.samples.selected" in out
        # The CLI must leave the global tracer off for the next caller.
        assert not obs.TRACER.enabled

    def test_stats_without_trace_file(self, tmp_path, capsys):
        rc = main(["sweep", "--threads", "4", "--scale", "0.05", "--stats"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "telemetry summary — counters" in out

    def test_run_without_telemetry_collects_nothing(self, capsys):
        from repro import obs

        obs.TRACER.clear()  # drop data a prior --stats run left readable
        rc = main(["sweep", "--threads", "4", "--scale", "0.05"])
        assert rc == 0
        assert obs.TRACER.events == []
        assert "telemetry summary" not in capsys.readouterr().out

    def test_verbose_and_quiet_set_log_levels(self):
        import logging

        from repro import obs

        rc = main(["sweep", "--threads", "4", "--scale", "0.05", "-vv"])
        assert rc == 0
        assert obs.logger.level == logging.DEBUG
        rc = main(["sweep", "--threads", "4", "--scale", "0.05", "-q"])
        assert rc == 0
        assert obs.logger.level == logging.ERROR
