"""Contention model: inflation under load concentration."""

import numpy as np
import pytest

from repro.machine.interconnect import ContentionModel


class TestValidation:
    def test_invalid_domains(self):
        with pytest.raises(ValueError):
            ContentionModel(0)

    def test_negative_beta(self):
        with pytest.raises(ValueError):
            ContentionModel(4, beta=-0.1)

    def test_inflation_cap_below_one(self):
        with pytest.raises(ValueError):
            ContentionModel(4, max_inflation=0.5)

    def test_wrong_shape(self):
        model = ContentionModel(4)
        with pytest.raises(ValueError):
            model.inflation(np.zeros(3), 4)


class TestInflation:
    def test_no_traffic_no_inflation(self):
        model = ContentionModel(4)
        np.testing.assert_array_equal(model.inflation(np.zeros(4), 16), 1.0)

    def test_balanced_traffic_no_inflation(self):
        model = ContentionModel(4, beta=0.5)
        infl = model.inflation(np.full(4, 1000), 16)
        np.testing.assert_allclose(infl, 1.0)

    def test_centralized_traffic_inflates_target_only(self):
        model = ContentionModel(4, beta=0.5, max_inflation=10.0)
        infl = model.inflation(np.array([4000, 0, 0, 0]), 16)
        assert infl[0] == pytest.approx(1 + 0.5 * 3)  # rho=4, excess 3
        np.testing.assert_allclose(infl[1:], 1.0)

    def test_cap_applies(self):
        model = ContentionModel(8, beta=1.0, max_inflation=5.0)
        infl = model.inflation(np.array([1] + [0] * 7) * 8000, 48)
        assert infl[0] == 5.0

    def test_few_threads_drive_less(self):
        model = ContentionModel(4, beta=0.5, max_inflation=10.0)
        hot = np.array([4000, 0, 0, 0])
        one_thread = model.inflation(hot, 1)
        many = model.inflation(hot, 16)
        assert one_thread[0] < many[0]

    def test_inflation_monotone_in_concentration(self):
        model = ContentionModel(2, beta=0.5)
        mild = model.inflation(np.array([600, 400]), 8)
        severe = model.inflation(np.array([900, 100]), 8)
        assert severe[0] > mild[0]


class TestImbalance:
    def test_balanced_is_one(self):
        model = ContentionModel(4)
        assert model.imbalance(np.full(4, 7)) == pytest.approx(1.0)

    def test_centralized_equals_n_domains(self):
        model = ContentionModel(4)
        assert model.imbalance(np.array([100, 0, 0, 0])) == pytest.approx(4.0)

    def test_zero_traffic(self):
        model = ContentionModel(4)
        assert model.imbalance(np.zeros(4)) == 1.0
