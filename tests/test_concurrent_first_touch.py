"""Concurrent first touches (paper Section 6).

"Multiple threads may initialize a variable concurrently in a parallel
loop, so more than one thread may enter the SIGSEGV handler. Thus,
multiple threads may concurrently identify first touches and record
code- and data-centric attributions. Call paths of first touches to the
same variable from different threads are merged postmortemly."
"""

import numpy as np
import pytest

from repro.analysis import merge_profiles
from repro.machine import presets
from repro.machine.pagetable import UNBOUND
from repro.profiler import NumaProfiler
from repro.optim.policies import NumaTuning
from repro.runtime import ExecutionEngine
from repro.sampling import IBS
from repro.workloads import PartitionedSweep


@pytest.fixture
def parallel_init_run():
    machine = presets.generic(n_domains=4, cores_per_domain=2)
    profiler = NumaProfiler(IBS(period=512))
    engine = ExecutionEngine(
        machine,
        PartitionedSweep(
            NumaTuning(parallel_init={"data"}), n_elems=400_000, steps=2
        ),
        8,
        monitor=profiler,
    )
    engine.run()
    return machine, profiler.archive


class TestConcurrentFirstTouch:
    def test_multiple_threads_enter_the_handler(self, parallel_init_run):
        _, arc = parallel_init_run
        touchers = {
            tid for tid, p in arc.profiles.items() if p.first_touches
        }
        assert len(touchers) == 8  # every thread faulted on its partition

    def test_each_page_trapped_exactly_once(self, parallel_init_run):
        """Protection is cleared by the first fault: no page is reported
        by two threads."""
        _, arc = parallel_init_run
        all_pages = np.concatenate([
            ft.pages for p in arc.profiles.values() for ft in p.first_touches
        ])
        assert np.unique(all_pages).size == all_pages.size

    def test_interior_pages_covered(self, parallel_init_run):
        machine, arc = parallel_init_run
        seg = next(
            s for s in machine.page_table.segments if s.label == "data"
        )
        trapped = np.concatenate([
            ft.pages for p in arc.profiles.values() for ft in p.first_touches
        ])
        interior = seg.n_pages  # allocation is page-aligned with no slack
        assert trapped.size >= interior - 2

    def test_bindings_match_touchers(self, parallel_init_run):
        """Each trapped page ends up in its faulting thread's domain."""
        machine, arc = parallel_init_run
        seg = next(
            s for s in machine.page_table.segments if s.label == "data"
        )
        assert np.all(seg.domains != UNBOUND)
        for p in arc.profiles.values():
            for ft in p.first_touches:
                local = ft.pages - seg.start_page
                assert np.all(seg.domains[local] == ft.domain)

    def test_postmortem_merge_combines_paths(self, parallel_init_run):
        _, arc = parallel_init_run
        merged = merge_profiles(arc)
        mv = merged.var("data")
        assert len(mv.first_touches) == 8
        # All eight threads hit the same parallel-init context, so the
        # postmortem merge folds them into one path with summed pages.
        paths = mv.first_touch_paths()
        assert len(paths) == 1
        total = sum(ft.n_pages for ft in mv.first_touches)
        assert sum(paths.values()) == total
