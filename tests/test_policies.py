"""Tuning configurations."""


from repro.machine.pagetable import PlacementPolicy
from repro.optim.policies import (
    NumaTuning,
    PlacementSpec,
    blockwise_all,
    interleave_all,
)


class TestPlacementSpec:
    def test_domain_list(self):
        spec = PlacementSpec(PlacementPolicy.BLOCKWISE, (0, 1, 2))
        assert spec.domain_list() == [0, 1, 2]

    def test_no_domains(self):
        assert PlacementSpec(PlacementPolicy.FIRST_TOUCH).domain_list() is None

    def test_hashable_frozen(self):
        a = PlacementSpec(PlacementPolicy.BIND, (1,))
        assert a == PlacementSpec(PlacementPolicy.BIND, (1,))


class TestNumaTuning:
    def test_empty_defaults(self):
        t = NumaTuning()
        assert t.spec_for("x") is None
        assert not t.inits_in_parallel("x")
        assert not t.is_regrouped("x")
        assert "baseline" in t.describe()

    def test_queries(self):
        t = NumaTuning(
            placement={"a": PlacementSpec(PlacementPolicy.INTERLEAVE)},
            parallel_init={"b"},
            regroup={"c"},
        )
        assert t.spec_for("a").policy is PlacementPolicy.INTERLEAVE
        assert t.inits_in_parallel("b")
        assert t.is_regrouped("c")

    def test_describe_lists_changes(self):
        t = NumaTuning(parallel_init={"b"}, regroup={"c"})
        text = t.describe()
        assert "b: parallel first-touch init" in text
        assert "c: layout regrouped" in text


class TestHelpers:
    def test_blockwise_all(self):
        t = blockwise_all(["x", "y"], 4)
        assert t.spec_for("x").policy is PlacementPolicy.BLOCKWISE
        assert t.spec_for("y").domains == (0, 1, 2, 3)

    def test_interleave_all(self):
        t = interleave_all(["x"], 8)
        spec = t.spec_for("x")
        assert spec.policy is PlacementPolicy.INTERLEAVE
        assert len(spec.domains) == 8

    def test_interleave_all_default_domains(self):
        assert interleave_all(["x"]).spec_for("x").domains is None
