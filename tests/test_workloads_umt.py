"""UMT2013 workload: round-robin planes, MRK analysis, parallel-init fix."""

import numpy as np
import pytest

from repro.analysis import NumaAnalysis, classify_ranges, merge_profiles
from repro.analysis.patterns import AccessPattern
from repro.machine import presets
from repro.optim.policies import NumaTuning
from repro.profiler import NumaProfiler
from repro.runtime import ExecutionEngine
from repro.runtime.heap import VariableKind
from repro.runtime.thread import BindingPolicy
from repro.sampling import MRK
from repro.workloads import UMT2013

SMALL = dict(plane_elems=4096, n_angles=64, sweeps=3)


@pytest.fixture(scope="module")
def profiled():
    machine = presets.power7()
    prof = NumaProfiler(MRK(max_rate=2e6))
    engine = ExecutionEngine(
        machine, UMT2013(**SMALL), 32, monitor=prof,
        binding=BindingPolicy.SCATTER,
    )
    result = engine.run()
    return engine, result, merge_profiles(prof.archive)


class TestStructure:
    def test_variables_present(self, profiled):
        _, _, merged = profiled
        assert {"STime", "STotal", "psi", "geom_workspace"} <= set(merged.vars)

    def test_workspace_is_static(self, profiled):
        _, _, merged = profiled
        assert merged.var("geom_workspace").kind is VariableKind.STATIC
        assert merged.var("STime").kind is VariableKind.HEAP

    def test_plane_ownership_round_robin(self):
        prog = UMT2013(**SMALL)
        machine = presets.power7()
        from repro.runtime.heap import HeapAllocator
        from repro.runtime.program import ProgramContext
        from repro.runtime.thread import bind_threads

        ctx = ProgramContext(
            machine, HeapAllocator(machine),
            bind_threads(machine.topology, 32, BindingPolicy.SCATTER),
        )
        planes = prog._planes_of(ctx, 5)
        np.testing.assert_array_equal(planes % 32, 5)


class TestMrkAnalysis:
    def test_remote_fraction_high(self, profiled):
        """Paper: 86% of L3 misses access remote memory."""
        _, _, merged = profiled
        an = NumaAnalysis(merged)
        assert an.program_remote_fraction() > 0.6

    def test_heap_share_partial(self, profiled):
        """Paper: only 47% of remote accesses from heap variables."""
        _, _, merged = profiled
        an = NumaAnalysis(merged)
        share = an.kind_share(VariableKind.HEAP)
        assert 0.3 < share < 0.8

    def test_no_latency_metrics_with_mrk(self, profiled):
        _, _, merged = profiled
        an = NumaAnalysis(merged)
        assert an.program_lpi() is None
        assert an.total_latency() == 0.0


class TestStaggeredPattern:
    def test_stime_staggered(self, profiled):
        _, _, merged = profiled
        rep = classify_ranges(merged.var("STime").normalized_ranges())
        assert rep.pattern is AccessPattern.STAGGERED_OVERLAP
        assert rep.midpoint_monotonicity > 0.8


class TestParallelInitFix:
    def test_colocation_speedup(self):
        base = ExecutionEngine(
            presets.power7(), UMT2013(**SMALL), 32,
            binding=BindingPolicy.SCATTER,
        ).run()
        tuning = NumaTuning(parallel_init={"STime"})
        opt = ExecutionEngine(
            presets.power7(), UMT2013(tuning, **SMALL), 32,
            binding=BindingPolicy.SCATTER,
        ).run()
        assert opt.wall_seconds < base.wall_seconds

    def test_stime_planes_bound_to_owner_domains(self):
        machine = presets.power7()
        tuning = NumaTuning(parallel_init={"STime"})
        prog = UMT2013(tuning, **SMALL)
        ExecutionEngine(
            machine, prog, 32, binding=BindingPolicy.SCATTER
        ).run()
        seg = next(
            s for s in machine.page_table.segments if s.label == "STime"
        )
        # Pages spread across all four domains (co-located with owners).
        assert len(set(seg.domains.tolist())) == 4
