"""Address-centric binning: bin counts, edges, index mapping."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.profiler.addresscentric import (
    BIN_ENV_VAR,
    BIN_PAGE_THRESHOLD,
    DEFAULT_BINS,
    bin_count_for,
    bin_edges,
    bin_indices,
    configured_bins,
    normalized_range,
)

PAGE = 4096


class TestBinCount:
    def test_small_variable_unbinned(self):
        assert bin_count_for(5 * PAGE) == 1
        assert bin_count_for(100) == 1

    def test_large_variable_gets_default_bins(self):
        assert bin_count_for(6 * PAGE) == DEFAULT_BINS

    def test_threshold_is_five_pages(self):
        assert BIN_PAGE_THRESHOLD == 5

    def test_override(self):
        assert bin_count_for(100 * PAGE, n_bins=7) == 7

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv(BIN_ENV_VAR, "9")
        assert configured_bins() == 9
        assert bin_count_for(100 * PAGE) == 9

    def test_env_var_invalid_falls_back(self, monkeypatch):
        monkeypatch.setenv(BIN_ENV_VAR, "banana")
        assert configured_bins() == DEFAULT_BINS
        monkeypatch.setenv(BIN_ENV_VAR, "-3")
        assert configured_bins() == DEFAULT_BINS


class TestBinEdges:
    def test_edges_span_variable(self):
        edges = bin_edges(1000, 500, 5)
        assert edges[0] == 1000
        assert edges[-1] == 1500
        assert len(edges) == 6

    def test_edges_monotone(self):
        edges = bin_edges(0, 12345, 5)
        assert np.all(np.diff(edges) > 0)


class TestBinIndices:
    def test_boundaries(self):
        idx = bin_indices(np.array([0, 99, 100, 499]), 0, 500, 5)
        np.testing.assert_array_equal(idx, [0, 0, 1, 4])

    def test_last_byte_clipped_into_last_bin(self):
        assert bin_indices(np.array([499]), 0, 500, 5)[0] == 4

    def test_with_base_offset(self):
        idx = bin_indices(np.array([1000, 1250, 1499]), 1000, 500, 2)
        np.testing.assert_array_equal(idx, [0, 1, 1])


class TestNormalizedRange:
    def test_full_range(self):
        assert normalized_range(100, 199, 100, 100) == (0.0, 0.99)

    def test_zero_extent(self):
        assert normalized_range(0, 0, 0, 0) == (0.0, 0.0)


@given(
    # At least one byte per bin so integer edge rounding cannot collapse
    # bins to zero width.
    nbytes=st.integers(min_value=64, max_value=10**7),
    n_bins=st.integers(min_value=1, max_value=16),
    offsets=st.lists(st.floats(0, 1, exclude_max=True), min_size=1, max_size=50),
)
@settings(max_examples=60, deadline=None)
def test_bin_indices_consistent_with_edges(nbytes, n_bins, offsets):
    """Every address lands in the bin whose edge interval contains it."""
    base = 1 << 30
    addrs = base + (np.array(offsets) * nbytes).astype(np.int64)
    idx = bin_indices(addrs, base, nbytes, n_bins)
    edges = bin_edges(base, nbytes, n_bins)
    assert np.all(idx >= 0) and np.all(idx < n_bins)
    for a, b in zip(addrs, idx):
        assert edges[b] <= a  # address at or past its bin's start
        if b + 1 < n_bins:
            # strictly before the start of the bin after next
            assert a < edges[b + 2]
