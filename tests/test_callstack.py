"""Call stacks and source locations."""

import pytest

from repro.runtime.callstack import CallStack, SourceLoc


class TestSourceLoc:
    def test_equality_and_hash(self):
        a = SourceLoc("f", "x.c", 10)
        b = SourceLoc("f", "x.c", 10)
        assert a == b
        assert hash(a) == hash(b)

    def test_ordering_is_defined(self):
        assert sorted([SourceLoc("b"), SourceLoc("a")])[0].func == "a"

    def test_str_with_and_without_file(self):
        assert "x.c:10" in str(SourceLoc("f", "x.c", 10))
        assert str(SourceLoc("f")) == "f"


class TestCallStack:
    def test_default_root_is_main(self):
        assert CallStack().snapshot() == (SourceLoc("main"),)

    def test_push_pop(self):
        cs = CallStack()
        cs.push(SourceLoc("g"))
        assert cs.depth == 2
        assert cs.pop() == SourceLoc("g")
        assert cs.depth == 1

    def test_cannot_pop_root(self):
        cs = CallStack()
        with pytest.raises(IndexError):
            cs.pop()

    def test_snapshot_is_immutable_copy(self):
        cs = CallStack()
        cs.push(SourceLoc("g"))
        snap = cs.snapshot()
        cs.pop()
        assert snap == (SourceLoc("main"), SourceLoc("g"))

    def test_with_leaf_appends_access_site(self):
        cs = CallStack()
        cs.push(SourceLoc("kernel"))
        path = cs.with_leaf(SourceLoc("load", "k.c", 42))
        assert path[-1] == SourceLoc("load", "k.c", 42)
        assert path[:-1] == cs.snapshot()

    def test_custom_root(self):
        cs = CallStack(SourceLoc("thread_start"))
        assert cs.snapshot()[0].func == "thread_start"
