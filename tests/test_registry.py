"""Mechanism registry and the Table 1 configuration data."""

import pytest

from repro.errors import MechanismError
from repro.sampling import MECHANISMS, create_mechanism, table1_config
from repro.sampling.registry import TABLE1


class TestRegistry:
    def test_all_six_mechanisms_present(self):
        assert set(MECHANISMS) == {
            "IBS", "MRK", "PEBS", "DEAR", "PEBS-LL", "Soft-IBS"
        }

    def test_create_with_default_period(self):
        for name, cls in MECHANISMS.items():
            mech = create_mechanism(name)
            assert mech.period == cls.DEFAULT_PERIOD

    def test_create_with_custom_period(self):
        assert create_mechanism("IBS", period=123).period == 123

    def test_unknown_mechanism(self):
        with pytest.raises(MechanismError):
            create_mechanism("XYZ")


class TestTable1:
    def test_six_rows(self):
        assert len(TABLE1) == 6

    def test_paper_periods(self):
        assert table1_config("IBS").period == 64 * 1024
        assert table1_config("MRK").period == 1
        assert table1_config("PEBS").period == 1_000_000
        assert table1_config("DEAR").period == 20_000
        assert table1_config("PEBS-LL").period == 500_000
        assert table1_config("Soft-IBS").period == 10_000_000

    def test_paper_events(self):
        assert table1_config("MRK").event == "PM_MRK_FROM_L3MISS"
        assert table1_config("PEBS").event == "INST_RETIRED:ANY_P"
        assert table1_config("DEAR").event == "DATA_EAR_CACHE_LAT4"
        assert table1_config("PEBS-LL").event == "LATENCY_ABOVE_THRESHOLD"

    def test_paper_thread_counts(self):
        assert table1_config("IBS").threads == 48
        assert table1_config("MRK").threads == 128
        assert table1_config("Soft-IBS").threads == 48
        for name in ("PEBS", "DEAR", "PEBS-LL"):
            assert table1_config(name).threads == 8

    def test_presets_resolve(self):
        from repro.machine import presets

        for row in TABLE1:
            machine = presets.PRESETS[row.preset]()
            assert machine.n_cpus >= row.threads

    def test_default_periods_match_table1(self):
        for row in TABLE1:
            assert create_mechanism(row.mechanism).period == row.period

    def test_unknown_row(self):
        with pytest.raises(MechanismError):
            table1_config("FOO")
